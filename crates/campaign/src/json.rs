//! A minimal hand-rolled JSON value, parser and writer.
//!
//! The build environment is offline (no `serde`), and the campaign
//! report schema is small and stable, so the crate carries its own
//! ~200-line JSON kernel: integer-exact numbers (`i128` for counts, an
//! `f64` branch for rates), insertion-ordered objects (stable
//! serialisation), and byte-offset parse errors.

use crate::error::CampaignError;
use std::fmt::Write as _;

/// A JSON value with insertion-ordered object members.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialised without decimal point or exponent).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object member.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer in range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value compactly (no whitespace).
    #[must_use]
    pub fn write_compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `f` in Rust's shortest round-trip form, forcing a decimal
/// point so the value re-parses as [`Json::Float`].
///
/// JSON has no representation for non-finite numbers (`format!` would
/// produce `inf`/`NaN`, which no parser — including [`parse`] —
/// accepts), so non-finite input is a caller bug: it debug-asserts,
/// and in release builds degrades to `null` so the emitted document
/// still re-parses instead of poisoning every consumer downstream.
pub fn write_f64(out: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "non-finite {f} cannot be serialised as JSON");
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Writes `s` as a quoted JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting depth the parser accepts. The parser is
/// recursive-descent, so unbounded nesting in an untrusted checkpoint
/// file would overflow the stack; well-formed campaign reports nest
/// four levels deep, leaving enormous headroom.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`CampaignError::Parse`] with the byte offset of the first
/// offending character, or [`CampaignError::Schema`] (field `json`)
/// when containers nest deeper than [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Json, CampaignError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> CampaignError {
        CampaignError::Parse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    /// Bumps the container nesting depth, rejecting documents that
    /// would exhaust the recursion stack.
    fn descend(&mut self) -> Result<(), CampaignError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(CampaignError::Schema {
                field: "json",
                message: format!("containers nest deeper than {MAX_DEPTH} levels"),
            });
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), CampaignError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, CampaignError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, CampaignError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, CampaignError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, CampaignError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, CampaignError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'b') => '\u{8}',
                        Some(b'f') => '\u{c}',
                        Some(b'u') => {
                            // `unicode_escape` consumes through the last
                            // hex digit itself (it may span two `\uXXXX`
                            // units for a surrogate pair).
                            s.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    };
                    s.push(c);
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    // RFC 8259: control characters must be escaped. Raw
                    // ones in untrusted input are rejected, not smuggled
                    // into a string that would not round-trip.
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).expect("input was a str");
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Decodes one `\uXXXX` escape with `self.pos` on the `u`,
    /// consuming through the final hex digit. UTF-16 surrogate pairs —
    /// the default output of every `ensure_ascii` JSON emitter for
    /// astral-plane characters — are combined into one scalar; lone or
    /// mismatched surrogates are typed parse errors.
    fn unicode_escape(&mut self) -> Result<char, CampaignError> {
        let hi = self.hex4()?;
        match hi {
            0xD800..=0xDBFF => {
                if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                    return Err(self.error("unpaired high surrogate in \\u escape"));
                }
                self.pos += 1; // now on the `u` of the low half
                let lo = self.hex4()?;
                if !(0xDC00..=0xDFFF).contains(&lo) {
                    return Err(self.error("expected low surrogate after high surrogate"));
                }
                let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                char::from_u32(scalar).ok_or_else(|| self.error("bad \\u escape"))
            }
            0xDC00..=0xDFFF => Err(self.error("lone low surrogate in \\u escape")),
            v => char::from_u32(v).ok_or_else(|| self.error("bad \\u escape")),
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape with `self.pos`
    /// on the `u`, leaving it past the last digit. Exactly four ASCII
    /// hex digits — `from_str_radix`'s tolerance for a leading `+` must
    /// not leak into the JSON grammar.
    fn hex4(&mut self) -> Result<u32, CampaignError> {
        let digits = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.error("bad \\u escape"))?;
        self.pos += 5;
        Ok(digits)
    }

    fn number(&mut self) -> Result<Json, CampaignError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let overflow = |message: &str| CampaignError::Parse {
            offset: start,
            message: message.to_string(),
        };
        if float {
            let f = text
                .parse::<f64>()
                .map_err(|e| self.error(&format!("bad number: {e}")))?;
            // `1e999` parses to infinity, which `write_f64` could never
            // re-serialise as JSON — reject it here so parse/serialise
            // stays a fixpoint even on adversarial input.
            if !f.is_finite() {
                return Err(overflow("number overflows the f64 range"));
            }
            Ok(Json::Float(f))
        } else {
            text.parse::<i128>().map(Json::Int).map_err(|e| {
                // A digitless token (`-` alone) is a syntax error; with
                // digits present the only way i128 parsing fails is
                // overflow.
                if text.bytes().any(|b| b.is_ascii_digit()) {
                    overflow("integer overflows the i128 range")
                } else {
                    self.error(&format!("bad number: {e}"))
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.write_compact(), text, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\"y","d":[-1.25,true]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.write_compact(), text);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn integers_stay_exact() {
        let big = (1u64 << 62) + 3;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn floats_force_a_decimal_point() {
        let mut s = String::new();
        write_f64(&mut s, 1.0);
        assert_eq!(s, "1.0");
        assert_eq!(parse("1.0").unwrap(), Json::Float(1.0));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // A 10k-deep array must come back as a typed error; before the
        // depth guard this overflowed the recursion stack and aborted
        // the process — fatal for a resumable campaign reading an
        // untrusted checkpoint file.
        let deep = format!("{}1{}", "[".repeat(10_000), "]".repeat(10_000));
        match parse(&deep) {
            Err(CampaignError::Schema {
                field: "json",
                message,
            }) => {
                assert!(message.contains("128"), "{message}");
            }
            other => panic!("expected depth error, got {other:?}"),
        }
        // Same guard for objects.
        let deep_obj = format!("{}1{}", "{\"k\":".repeat(10_000), "}".repeat(10_000));
        assert!(matches!(
            parse(&deep_obj),
            Err(CampaignError::Schema { field: "json", .. })
        ));
        // The limit is generous: a report-shaped document passes.
        let nested = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&nested).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_one_scalar() {
        // The default `ensure_ascii` encoding of U+1F600 (the grinning
        // emoji), e.g. Python's `json.dumps`.
        let v = parse(r#"{"a":"\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_str(), Some("\u{1f600}"));
        // The escaped and raw spellings parse to the same value...
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            parse("\"\u{1f600}\"").unwrap()
        );
        // ...and the round trip lands on the raw spelling.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().write_compact(),
            format!("\"\u{1f600}\"")
        );
        // Boundary pairs of the astral range.
        assert_eq!(
            parse(r#""\ud800\udc00""#).unwrap().as_str(),
            Some("\u{10000}")
        );
        assert_eq!(
            parse(r#""\udbff\udfff""#).unwrap().as_str(),
            Some("\u{10ffff}")
        );
        // Escaped BMP scalars (no pair) still decode as before.
        assert_eq!(
            parse(r#""\u0041\u00e9""#).unwrap().as_str(),
            Some("A\u{e9}")
        );
    }

    #[test]
    fn lone_and_mismatched_surrogates_are_typed_errors() {
        for text in [
            r#""\ud800""#,       // unpaired high at end of string
            r#""\ud800x""#,      // high followed by a plain char
            r#""\ud800\ud800""#, // high followed by another high
            r#""\udc00""#,       // lone low
            r#""\ude00\ud83d""#, // pair in the wrong order
            r#""\ud83d\ude0""#,  // truncated low half
            r#""\u+123""#,       // from_str_radix sign tolerance
            r#""\uDEFG""#,       // non-hex digits
        ] {
            assert!(
                matches!(parse(text), Err(CampaignError::Parse { .. })),
                "{text} must be a typed parse error, got {:?}",
                parse(text)
            );
        }
    }

    #[test]
    fn raw_control_characters_in_strings_are_rejected() {
        assert!(matches!(
            parse("\"a\u{0}b\""),
            Err(CampaignError::Parse { .. })
        ));
        assert!(matches!(
            parse("\"a\nb\""),
            Err(CampaignError::Parse { .. })
        ));
        // Their escaped spellings stay valid and round-trip.
        let v = parse(r#""a\u0000b\nc\bd\fe""#).unwrap();
        assert_eq!(v.as_str(), Some("a\u{0}b\nc\u{8}d\u{c}e"));
        assert!(parse(&v.write_compact()).is_ok());
    }

    #[test]
    fn non_finite_numbers_are_rejected_at_parse_time() {
        // 1e308 is the largest finite decade and must stay accepted.
        assert_eq!(parse("1e308").unwrap(), Json::Float(1e308));
        assert_eq!(
            parse("-1.7976931348623157e308").unwrap(),
            Json::Float(f64::MIN)
        );
        for text in ["1e999", "-1e999", "1e99999", "[1e400]", "123e999999999"] {
            match parse(text) {
                Err(CampaignError::Parse { message, .. }) => {
                    assert!(message.contains("overflow"), "{text}: {message}");
                }
                other => panic!("{text}: expected overflow error, got {other:?}"),
            }
        }
        // Oversized integers overflow i128 with a typed error too.
        let huge = "9".repeat(50);
        assert!(matches!(parse(&huge), Err(CampaignError::Parse { .. })));
    }

    #[test]
    fn finite_floats_round_trip_and_non_finite_never_serialise_as_inf() {
        for f in [1e308, -1e308, 5e-324, 0.1, -2.5e17] {
            let mut s = String::new();
            write_f64(&mut s, f);
            assert_eq!(parse(&s).unwrap(), Json::Float(f), "{f}");
        }
        // Release-mode fallback: a non-finite value degrades to null,
        // which still re-parses (debug builds assert instead).
        if !cfg!(debug_assertions) {
            let mut s = String::new();
            write_f64(&mut s, f64::INFINITY);
            assert_eq!(parse(&s).unwrap(), Json::Null);
        }
    }

    #[test]
    fn errors_carry_offsets() {
        match parse("{\"k\": }") {
            Err(CampaignError::Parse { offset, .. }) => assert_eq!(offset, 6),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse("[1,2").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
