//! Word-level reference interpreter for scheduled dataflow graphs.
//!
//! Both elaboration paths — the unrolled combinational lowering
//! ([`super::elaborate_datapath`]) and the cycle-accurate shared-FU
//! lowering ([`super::elaborate_seq_datapath`]) — must compute exactly
//! the functions this interpreter computes. It is the fault-free oracle
//! of every differential test: whatever the structural lowering does
//! with muxes, controllers and registers, the final result buses must
//! be bit-identical to this straight-line evaluation.

use crate::Word;
use scdp_hls::{Dfg, OpKind};

/// The interpreter's verdict over one input assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfgEval {
    /// Result-bus values in the elaborated netlist's output order
    /// (load addresses, store addresses/values and named outputs in
    /// node order; `error`/`_err*` outputs excluded).
    pub results: Vec<Word>,
    /// `true` if any error output carried a non-zero value.
    pub alarm: bool,
}

/// Interprets a DFG over [`Word`] values: inputs and load data are
/// drawn from `inputs` in node order (exactly the elaborated netlists'
/// input-bus order); returns result buses in the elaborated netlists'
/// output order plus the alarm bit.
///
/// Division follows the restoring-divider hardware convention for a
/// zero divisor: the quotient is all-ones and the remainder is the
/// dividend.
///
/// # Panics
///
/// Panics if `inputs` is shorter than the number of input and load
/// nodes.
#[must_use]
pub fn interpret_dfg(dfg: &Dfg, width: u32, inputs: &[Word]) -> DfgEval {
    let mut next_input = 0usize;
    let mut take = || {
        let w = inputs[next_input];
        next_input += 1;
        w
    };
    let mut values: Vec<Word> = Vec::with_capacity(dfg.len());
    let mut results: Vec<Word> = Vec::new();
    let mut alarm = false;
    for (_, node) in dfg.iter() {
        let arg = |i: usize, values: &[Word]| values[node.args[i].index()];
        let v = match &node.kind {
            OpKind::Input(_) => take(),
            OpKind::Const(c) => Word::from_i64(width, *c),
            OpKind::Output(name) => {
                let val = arg(0, &values);
                if name == "error" || name.starts_with("_err") {
                    alarm |= val.bits() != 0;
                } else {
                    results.push(val);
                }
                Word::new(width, 0)
            }
            OpKind::Load { .. } => {
                results.push(arg(0, &values)); // address bus
                take()
            }
            OpKind::Store { .. } => {
                results.push(arg(0, &values));
                if node.args.len() > 1 {
                    results.push(arg(1, &values));
                }
                Word::new(width, 0)
            }
            OpKind::Add => arg(0, &values).wrapping_add(arg(1, &values)),
            OpKind::Sub => arg(0, &values).wrapping_sub(arg(1, &values)),
            OpKind::Neg => Word::new(width, 0).wrapping_sub(arg(0, &values)),
            OpKind::Mul => arg(0, &values).wrapping_mul(arg(1, &values)),
            OpKind::Div => {
                let (a, d) = (arg(0, &values).bits(), arg(1, &values).bits());
                // d == 0: the restoring divider naturally yields an
                // all-ones quotient.
                Word::new(width, a.checked_div(d).unwrap_or((1u64 << width) - 1))
            }
            OpKind::Rem => {
                let (a, d) = (arg(0, &values).bits(), arg(1, &values).bits());
                // d == 0: the partial remainder ends as the dividend.
                Word::new(width, a.checked_rem(d).unwrap_or(a))
            }
            OpKind::CmpNe => Word::new(1, u64::from(arg(0, &values) != arg(1, &values))),
            OpKind::OrBit => Word::new(1, arg(0, &values).bits() | arg(1, &values).bits()),
        };
        values.push(v);
    }
    DfgEval { results, alarm }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_arithmetic() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let s = d.op(OpKind::Add, &[a, b]);
        let m = d.op(OpKind::Mul, &[s, b]);
        d.output("m", m);
        let ev = interpret_dfg(&d, 4, &[Word::new(4, 3), Word::new(4, 5)]);
        assert_eq!(ev.results, vec![Word::new(4, ((3 + 5) * 5) & 0xF)]);
        assert!(!ev.alarm);
    }

    #[test]
    fn error_outputs_raise_the_alarm() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let b = d.input("b");
        let ne = d.op(OpKind::CmpNe, &[a, b]);
        d.output("error", ne);
        let eq = interpret_dfg(&d, 3, &[Word::new(3, 2), Word::new(3, 2)]);
        assert!(!eq.alarm);
        let diff = interpret_dfg(&d, 3, &[Word::new(3, 2), Word::new(3, 4)]);
        assert!(diff.alarm);
    }

    #[test]
    fn division_by_zero_follows_the_hardware() {
        let mut d = Dfg::new("t");
        let a = d.input("a");
        let z = d.constant(0);
        let q = d.op(OpKind::Div, &[a, z]);
        let r = d.op(OpKind::Rem, &[a, z]);
        d.output("q", q);
        d.output("r", r);
        let ev = interpret_dfg(&d, 3, &[Word::new(3, 5)]);
        assert_eq!(ev.results, vec![Word::new(3, 7), Word::new(3, 5)]);
    }
}
