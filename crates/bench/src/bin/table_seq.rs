//! Cycle-accurate datapath fault-campaign sweep: every `scdp-fir`
//! workload × every Table 1 technique × fault durations (permanent plus
//! early/mid-schedule transients), each run on the shared-FU sequential
//! machine with per-cycle first-detection latencies — the time axis the
//! unrolled `table_datapath` sweep cannot express.
//!
//! Usage:
//!   table_seq [--width N] [--samples N] [--seed S] [--threads N]
//!             [--style plain|full|embedded] [--dedicated]
//!             [--report-dir DIR]
//!
//! `--report-dir DIR` writes one `scdp.campaign.report/v3` JSON per
//! scenario as `DIR/seq_<workload>_<technique>_<duration>.json`.

use scdp_bench::{pct, CliArgs};
use scdp_campaign::{
    duration_label, style_from_label, style_label, DatapathScenario, DfgSource, FaultDuration,
    InputSpace,
};
use scdp_core::{Allocation, Technique};
use scdp_hls::SckStyle;

fn main() {
    let args = CliArgs::parse();
    let width = args.width(3).clamp(1, 16);
    let samples = args.samples(1024);
    let seed = args.seed();
    let threads = args.threads();
    let style = args
        .value::<String>("--style")
        .and_then(|s| style_from_label(&s))
        .unwrap_or(SckStyle::Full);
    let allocation = if args.flag("--dedicated") {
        Allocation::Dedicated
    } else {
        Allocation::SingleUnit
    };
    let report_dir = args.value::<String>("--report-dir");
    if let Some(dir) = &report_dir {
        std::fs::create_dir_all(dir).expect("create report dir");
    }

    println!(
        "Sequential datapath campaigns: width {width}, style {}, {} allocation, \
         {samples} vectors/fault (seed {seed:#x})",
        style_label(style),
        if allocation == Allocation::Dedicated {
            "dedicated-checker"
        } else {
            "shared (worst-case)"
        },
    );
    println!(
        "{:<8} {:<6} {:<12} {:>7} {:>7} {:>10} {:>10} {:>10}",
        "workload", "tech", "duration", "cycles", "faults", "coverage", "detection", "latency"
    );

    for source in DfgSource::BUILTIN {
        for technique in Technique::ALL {
            let label = source.label();
            let scenario = DatapathScenario::new(source.clone(), width)
                .technique(technique)
                .style(style)
                .allocation(allocation);
            // One elaboration per scenario, shared by all durations.
            let machine = scenario.elaborate_seq();
            // Permanent defects plus two single-cycle upsets: one early
            // (first capture window) and one mid-schedule.
            let durations = [
                FaultDuration::Permanent,
                FaultDuration::Transient { cycle: 1 },
                FaultDuration::Transient {
                    cycle: machine.total_cycles / 2,
                },
            ];
            for duration in durations {
                let report = scenario
                    .clone()
                    .seq_campaign()
                    .duration(duration)
                    .input_space(InputSpace::Sampled {
                        per_fault: samples,
                        seed,
                    })
                    .threads(threads)
                    .run_on(&machine)
                    .expect("sequential campaign");
                let seq = report.sequential.as_ref().expect("sequential section");
                let latency = seq
                    .mean_detection_latency()
                    .map_or("-".to_string(), |l| format!("{l:.2}c"));
                println!(
                    "{:<8} {:<6} {:<12} {:>7} {:>7} {:>10} {:>10} {:>10}",
                    label,
                    format!("{technique:?}").to_lowercase(),
                    duration_label(duration),
                    seq.total_cycles,
                    report.fault_count(),
                    pct(report.coverage()),
                    pct(report.detection_rate()),
                    latency,
                );
                if let Some(dir) = &report_dir {
                    let path = format!(
                        "{dir}/seq_{label}_{}_{}.json",
                        format!("{technique:?}").to_lowercase(),
                        duration_label(duration).replace('@', "_"),
                    );
                    std::fs::write(&path, report.to_json()).expect("write report");
                    eprintln!("    wrote {path}");
                }
            }
        }
    }
}
