//! Regression pins for the `gate_xval --width 4` campaign numbers.
//!
//! These tallies were produced by the scalar `Netlist::eval_nets`
//! campaign path (the pre-engine `gate_xval` implementation) and
//! re-verified bit-for-bit against it via the equivalence property in
//! `equivalence.rs`; the bit-parallel engine must keep reproducing them
//! exactly. Any drift here means either the generators or the engine
//! changed semantics.

use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{
    self_checking, self_checking_add_with, AdderRealisation, SelfCheckingSpec,
};
use scdp_sim::{correlated_coverage, InputPlan};

/// (realisation, technique, sites, correct_silent, correct_detected,
/// error_detected, error_undetected)
const ADD_PINS: [(AdderRealisation, Technique, usize, u64, u64, u64, u64); 9] = [
    (
        AdderRealisation::RippleCarry,
        Technique::Tech1,
        60,
        12352,
        7736,
        9032,
        1600,
    ),
    (
        AdderRealisation::RippleCarry,
        Technique::Tech2,
        60,
        11840,
        8248,
        9160,
        1472,
    ),
    (
        AdderRealisation::RippleCarry,
        Technique::Both,
        60,
        9776,
        10312,
        9736,
        896,
    ),
    (
        AdderRealisation::CarryLookahead,
        Technique::Tech1,
        114,
        34704,
        10576,
        11488,
        1600,
    ),
    (
        AdderRealisation::CarryLookahead,
        Technique::Tech2,
        114,
        34192,
        11088,
        11616,
        1472,
    ),
    (
        AdderRealisation::CarryLookahead,
        Technique::Both,
        114,
        31140,
        14140,
        12192,
        896,
    ),
    (
        AdderRealisation::CarrySave,
        Technique::Tech1,
        78,
        19072,
        7440,
        10384,
        3040,
    ),
    (
        AdderRealisation::CarrySave,
        Technique::Tech2,
        78,
        18368,
        8144,
        10576,
        2848,
    ),
    (
        AdderRealisation::CarrySave,
        Technique::Both,
        78,
        15284,
        11228,
        11856,
        1568,
    ),
];

#[test]
fn width4_adder_tallies_are_pinned() {
    for (real, tech, sites, cs, cd, ed, eu) in ADD_PINS {
        let dp = self_checking_add_with(4, tech, real);
        let r = correlated_coverage(&dp, InputPlan::Exhaustive, 2);
        assert_eq!(r.sites, sites, "{real} {tech:?} site count");
        let t = r.tally;
        assert_eq!(
            (
                t.correct_silent,
                t.correct_detected,
                t.error_detected,
                t.error_undetected
            ),
            (cs, cd, ed, eu),
            "{real} {tech:?} tally drifted"
        );
        assert_eq!(
            t.total(),
            sites as u64 * 2 * 256,
            "{real} {tech:?} situations"
        );
    }
}

#[test]
fn width4_multiplier_tallies_are_pinned() {
    let cases = [
        (Technique::Tech1, 37680u64, 5760u64, 12624u64, 6912u64),
        (Technique::Both, 35200, 8240, 14176, 5360),
    ];
    for (tech, cs, cd, ed, eu) in cases {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Mul,
            technique: tech,
            width: 4,
        });
        let r = correlated_coverage(&dp, InputPlan::Exhaustive, 2);
        assert_eq!(r.sites, 123, "{tech:?} mul site count");
        let t = r.tally;
        assert_eq!(
            (
                t.correct_silent,
                t.correct_detected,
                t.error_detected,
                t.error_undetected
            ),
            (cs, cd, ed, eu),
            "{tech:?} mul tally drifted"
        );
    }
}

/// The realisations disagree on site counts but agree on the paper's
/// point: every realisation lands in the same coverage band and the
/// Both column dominates each single technique.
#[test]
fn realisations_share_the_coverage_band() {
    for real in AdderRealisation::ALL {
        let both = correlated_coverage(
            &self_checking_add_with(4, Technique::Both, real),
            InputPlan::Exhaustive,
            2,
        )
        .coverage();
        let t1 = correlated_coverage(
            &self_checking_add_with(4, Technique::Tech1, real),
            InputPlan::Exhaustive,
            2,
        )
        .coverage();
        assert!(both >= t1 - 1e-12, "{real}");
        assert!((0.90..1.0).contains(&both), "{real}: {both}");
    }
}
