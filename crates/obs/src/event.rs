//! The unified structured event stream.
//!
//! One [`ObsEvent`] type replaces the old per-spec `Progress` enum:
//! all three campaign spec shapes emit the same lifecycle events, the
//! shard runner adds shard progress, and closing [`Span`](crate::Span)s
//! emit timing — so a single [`EventSink`] (a JSONL trace file, a live
//! stderr renderer, a test probe) observes an entire sharded campaign
//! through one channel.
//!
//! The JSONL form (`to_json_line`) is the stable `--trace` file
//! format: one object per line, field `"event"` first carrying the
//! [`ObsEvent::kind`] tag.

use std::fmt::Write as _;
use std::sync::Arc;

/// A fan-out target for [`ObsEvent`]s. Sinks must tolerate concurrent
/// calls (shards run on worker threads).
pub type EventSink = Arc<dyn Fn(&ObsEvent) + Send + Sync>;

/// One structured campaign event.
///
/// Labels are plain strings (`backend`, `fault_model`, shard `state`)
/// rather than the campaign crate's enums — this crate sits below
/// `scdp-campaign` and the stable label vocabulary
/// (`functional`/`gate_level`, `fa_functional`/…, `ran`/`resumed`)
/// already exists for the report schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A campaign run began.
    CampaignStarted {
        /// Backend label (e.g. `functional`).
        backend: String,
        /// Fault-model label (e.g. `fa_gate`).
        fault_model: String,
    },
    /// The gate-level netlist was compiled (gate-level backends only).
    NetlistCompiled {
        /// Netlist name.
        name: String,
        /// Gate count.
        gates: u64,
        /// Fault-universe size.
        faults: u64,
    },
    /// A campaign run completed.
    CampaignFinished {
        /// Situations simulated.
        simulated: u64,
        /// Wall-clock milliseconds (from the root span).
        elapsed_ms: u64,
    },
    /// A [`Span`](crate::Span) closed.
    SpanClosed {
        /// Hierarchical span path.
        path: String,
        /// Wall-clock nanoseconds.
        elapsed_ns: u64,
    },
    /// A shard began executing (or resuming) under the runner.
    ShardStarted {
        /// Shard index (0-based).
        shard: u32,
        /// Total shard count.
        of: u32,
        /// Faults covered by the shard.
        faults: u64,
    },
    /// A shard finished under the runner.
    ShardFinished {
        /// Shard index (0-based).
        shard: u32,
        /// Total shard count.
        of: u32,
        /// `ran` for a fresh execution, `resumed` for a checkpoint
        /// hit.
        state: String,
        /// Faults covered by the shard.
        faults: u64,
        /// Faults the shard detected.
        detected: u64,
        /// Faults the shard dropped before exhausting their inputs.
        dropped: u64,
        /// Situations simulated by the shard.
        simulated: u64,
        /// Shard wall-clock milliseconds (0 for resumed shards).
        elapsed_ms: u64,
    },
}

impl ObsEvent {
    /// The stable tag written as the JSONL `"event"` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::CampaignStarted { .. } => "campaign_started",
            ObsEvent::NetlistCompiled { .. } => "netlist_compiled",
            ObsEvent::CampaignFinished { .. } => "campaign_finished",
            ObsEvent::SpanClosed { .. } => "span",
            ObsEvent::ShardStarted { .. } => "shard_started",
            ObsEvent::ShardFinished { .. } => "shard_finished",
        }
    }

    /// Serialises the event as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"event\":");
        write_json_string(&mut out, self.kind());
        match self {
            ObsEvent::CampaignStarted {
                backend,
                fault_model,
            } => {
                out.push_str(",\"backend\":");
                write_json_string(&mut out, backend);
                out.push_str(",\"fault_model\":");
                write_json_string(&mut out, fault_model);
            }
            ObsEvent::NetlistCompiled {
                name,
                gates,
                faults,
            } => {
                out.push_str(",\"name\":");
                write_json_string(&mut out, name);
                let _ = write!(out, ",\"gates\":{gates},\"faults\":{faults}");
            }
            ObsEvent::CampaignFinished {
                simulated,
                elapsed_ms,
            } => {
                let _ = write!(
                    out,
                    ",\"simulated\":{simulated},\"elapsed_ms\":{elapsed_ms}"
                );
            }
            ObsEvent::SpanClosed { path, elapsed_ns } => {
                out.push_str(",\"path\":");
                write_json_string(&mut out, path);
                let _ = write!(out, ",\"elapsed_ns\":{elapsed_ns}");
            }
            ObsEvent::ShardStarted { shard, of, faults } => {
                let _ = write!(out, ",\"shard\":{shard},\"of\":{of},\"faults\":{faults}");
            }
            ObsEvent::ShardFinished {
                shard,
                of,
                state,
                faults,
                detected,
                dropped,
                simulated,
                elapsed_ms,
            } => {
                let _ = write!(out, ",\"shard\":{shard},\"of\":{of},\"state\":");
                write_json_string(&mut out, state);
                let _ = write!(
                    out,
                    ",\"faults\":{faults},\"detected\":{detected},\"dropped\":{dropped},\
                     \"simulated\":{simulated},\"elapsed_ms\":{elapsed_ms}"
                );
            }
        }
        out.push('}');
        out
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes, escapes).
///
/// Public because the CLI's trace writer reuses it for ad-hoc fields.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let e = ObsEvent::SpanClosed {
            path: "campaign/simulate".into(),
            elapsed_ns: 5,
        };
        assert_eq!(e.kind(), "span");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"span\",\"path\":\"campaign/simulate\",\"elapsed_ns\":5}"
        );
    }

    #[test]
    fn every_variant_serialises_with_its_kind_first() {
        let events = [
            ObsEvent::CampaignStarted {
                backend: "functional".into(),
                fault_model: "fa_functional".into(),
            },
            ObsEvent::NetlistCompiled {
                name: "add4".into(),
                gates: 40,
                faults: 128,
            },
            ObsEvent::CampaignFinished {
                simulated: 7,
                elapsed_ms: 3,
            },
            ObsEvent::ShardStarted {
                shard: 0,
                of: 4,
                faults: 32,
            },
            ObsEvent::ShardFinished {
                shard: 0,
                of: 4,
                state: "ran".into(),
                faults: 32,
                detected: 30,
                dropped: 5,
                simulated: 512,
                elapsed_ms: 9,
            },
        ];
        for e in events {
            let line = e.to_json_line();
            assert!(
                line.starts_with(&format!("{{\"event\":\"{}\"", e.kind())),
                "{line}"
            );
            assert!(line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
