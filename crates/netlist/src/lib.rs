//! Gate-level netlist substrate for self-checking data-paths.
//!
//! The paper's methodology is *specification-level*: the `SCK` data type
//! expands into extra operations that a synthesis flow maps to hardware.
//! This crate plays the role of that hardware back-end: it provides
//!
//! * a small structural **netlist IR** ([`Netlist`], [`NetlistBuilder`])
//!   with two-input gates, levelized evaluation and single/multiple
//!   stuck-at fault injection on every gate output (stem) and input pin
//!   (fanout branch);
//! * **generators** for the datapath components the paper's circuits
//!   need: ripple-carry and carry-lookahead adders, add/sub units, array
//!   multipliers, restoring dividers, comparators, zero detectors and
//!   two-rail checkers;
//! * a **self-checking datapath generator** ([`gen::self_checking`])
//!   that assembles `operator × technique × width` into a netlist with a
//!   `ris` output and an `error` output — the structural realisation of
//!   the paper's overloaded operators;
//! * exports to Graphviz DOT and structural Verilog.
//!
//! Gate-level stuck-at campaigns on these netlists cross-validate the
//! functional-level coverage numbers of `scdp-coverage` (the paper's
//! claim that its test architecture is "independent of the actual
//! implementation" — exercised by comparing ripple-carry against
//! carry-lookahead realisations).
//!
//! # Example
//!
//! ```
//! use scdp_netlist::gen::rca;
//! use scdp_netlist::Word;
//!
//! let adder = rca(8);
//! let out = adder.eval_words(&[Word::from_i64(8, 100), Word::from_i64(8, -27)], &[]);
//! assert_eq!(out[0].to_i64(), 73); // sum bus
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod gen;
mod ir;

pub use ir::{
    FaultDuration, Gate, GateKind, NetId, Netlist, NetlistBuilder, SeqStuckAt, StuckAtLine,
    StuckSite,
};
pub use scdp_arith::Word;
