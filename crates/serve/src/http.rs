//! A minimal HTTP/1.1 request/response layer over [`std::net`].
//!
//! Deliberately tiny: the server speaks exactly the subset its four
//! routes need — one request per connection (`Connection: close`),
//! `Content-Length` bodies only, hard limits on header and body size,
//! and a read timeout so a stalled client cannot pin a handler thread.
//! Every limit violation maps to a typed [`HttpError`] the caller
//! turns into a 4xx JSON response.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted size of the request line + headers, in bytes.
pub const MAX_HEAD: usize = 8 * 1024;

/// Maximum accepted `Content-Length`, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// How long a handler waits on a slow or stalled client before
/// giving up on the request.
pub const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed request: method, path and (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// The request target, verbatim (no query-string splitting; the
    /// server's routes do not use one).
    pub path: String,
    /// The request body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The request line or headers were malformed (or over
    /// [`MAX_HEAD`]).
    BadRequest(String),
    /// The declared `Content-Length` exceeds [`MAX_BODY`].
    BodyTooLarge(usize),
    /// The client stalled past [`READ_TIMEOUT`].
    Timeout,
    /// The connection failed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::BodyTooLarge(n) => {
                write!(
                    f,
                    "request body of {n} bytes exceeds the {MAX_BODY} byte limit"
                )
            }
            HttpError::Timeout => write!(f, "timed out reading the request"),
            HttpError::Io(e) => write!(f, "connection error: {e}"),
        }
    }
}

impl HttpError {
    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::BodyTooLarge(_) => 413,
            HttpError::Timeout => 408,
            HttpError::Io(_) => 400,
        }
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Io(e),
    }
}

/// Reads and parses one request from `stream`, enforcing
/// [`MAX_HEAD`], [`MAX_BODY`] and [`READ_TIMEOUT`].
///
/// # Errors
///
/// Returns an [`HttpError`] describing the malformed request, limit
/// violation or connection failure.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(HttpError::Io)?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::BadRequest(format!(
                "request head exceeds {MAX_HEAD} bytes"
            )));
        }
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before the request head ended".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    };
    if method.is_empty() || path.is_empty() {
        return Err(HttpError::BadRequest(format!(
            "malformed request line `{request_line}`"
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad Content-Length `{value}`")))?;
        }
    }
    if content_length > MAX_BODY {
        // Drain the declared body (bounded) so the client can finish
        // its write and still read the 413 — closing mid-upload would
        // reset the connection under the response. Past the cap the
        // client is hostile; just close.
        if content_length <= 8 * MAX_BODY {
            let mut remaining = content_length.saturating_sub(buf.len() - (head_end + 4));
            while remaining > 0 {
                match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => remaining = remaining.saturating_sub(n),
                }
            }
        }
        return Err(HttpError::BodyTooLarge(content_length));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::BadRequest(
                "connection closed before the declared body ended".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// The byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one `Connection: close` JSON response.
///
/// # Errors
///
/// Propagates the socket write error.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The canonical reason phrase of every status the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found_only_when_terminated() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn errors_map_to_the_right_status() {
        assert_eq!(HttpError::BadRequest(String::new()).status(), 400);
        assert_eq!(HttpError::BodyTooLarge(0).status(), 413);
        assert_eq!(HttpError::Timeout.status(), 408);
    }
}
