//! Regenerates **Table 1** of the paper: the overloading techniques for
//! `+`, `−`, `×`, `/` and their local fault coverage under the
//! worst-case (shared-unit) allocation.
//!
//! The paper does not state the operand width used for its Table 1
//! percentages; we default to 8 bits (exhaustive for `+`/`−`, sampled
//! for `×`/`/` whose cell universes are large) and print the checking
//! recipe next to each coverage figure, as the paper's table does.
//!
//! Usage:
//!   table1 [--width N] [--samples N] [--seed S] [--exhaustive]

use scdp_bench::{arg_value, has_flag, pct, timed};
use scdp_core::{Operator, Technique};
use scdp_coverage::{CampaignBuilder, InputSpace, OperatorKind, TechIndex};

const PAPER: [(Operator, f64, f64, Option<f64>); 4] = [
    (Operator::Add, 97.25, 98.81, Some(99.11)),
    (Operator::Sub, 96.85, 94.01, Some(99.58)),
    (Operator::Mul, 96.22, 96.38, Some(97.43)),
    (Operator::Div, 94.33, 97.16, None),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let width: u32 = arg_value(&args, "--width")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let samples: u64 = arg_value(&args, "--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 14);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDA7E_2005);
    let exhaustive = has_flag(&args, "--exhaustive");

    println!("Table 1 — overloading techniques and fault coverage ({width}-bit, worst case)");
    for (op, p1, p2, pboth) in PAPER {
        let kind = match op {
            Operator::Add => OperatorKind::Add,
            Operator::Sub => OperatorKind::Sub,
            Operator::Mul => OperatorKind::Mul,
            Operator::Div => OperatorKind::Div,
        };
        // +/- have compact universes: exhaustive. x and / are sampled
        // unless --exhaustive.
        let space = if exhaustive || matches!(kind, OperatorKind::Add | OperatorKind::Sub) {
            InputSpace::Exhaustive
        } else {
            InputSpace::Sampled {
                per_fault: samples,
                seed,
            }
        };
        let r = timed(&format!("{op}"), || {
            CampaignBuilder::new(kind, width).input_space(space).run()
        });
        println!("\n{op}  (ris = op1 {op} op2; {} faults)", r.fault_count());
        for (tech, idx, paper) in [
            (Technique::Tech1, TechIndex::Tech1, Some(p1)),
            (Technique::Tech2, TechIndex::Tech2, Some(p2)),
            (Technique::Both, TechIndex::Both, pboth),
        ] {
            let paper_s = paper.map_or("   -  ".to_string(), |p| format!("{p:.2}%"));
            println!(
                "  {:<9} {:<44} cov {:>7}  (paper {paper_s})",
                tech.to_string(),
                tech.describe(op),
                pct(r.coverage(idx)),
            );
        }
    }
    println!("\n(the paper's Div row evaluates Tech1/Tech2 only)");

    if has_flag(&args, "--gate") {
        gate_section(width.min(8), samples, seed);
    }
}

/// Gate-level companion rows on the bit-parallel engine of `scdp-sim`:
/// the same worst-case (correlated shared-unit) analysis run on
/// generated structural datapaths instead of the functional cell model.
fn gate_section(width: u32, samples: u64, seed: u64) {
    use scdp_netlist::gen::{self_checking, SelfCheckingSpec};
    use scdp_sim::{correlated_coverage, par, InputPlan};
    let plan = InputPlan::auto(2 * width as usize, samples, seed);
    let threads = par::default_threads();
    println!("\nGate-level structural campaigns ({width}-bit, bit-parallel engine):");
    for op in [Operator::Add, Operator::Sub, Operator::Mul] {
        let mut cells = Vec::new();
        for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            let dp = self_checking(SelfCheckingSpec {
                op,
                technique: tech,
                width,
            });
            let r = timed(&format!("gate {op} {tech}"), || {
                correlated_coverage(&dp, plan, threads)
            });
            cells.push(format!("{tech} {}", pct(r.coverage())));
        }
        println!("  {op}  {}", cells.join("   "));
    }
}
