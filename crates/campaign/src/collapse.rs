//! Shared collapse plumbing for the three spec shapes.
//!
//! `.collapse(true)` must leave every report *bit-identical* to the
//! uncollapsed run, so the integration is deliberately uniform across
//! `CampaignSpec`, `DatapathCampaignSpec` and `SeqDatapathCampaignSpec`:
//!
//! 1. build the [`CollapsedUniverse`] of the compiled netlist and
//!    canonicalise the campaign's fault groups;
//! 2. simulate **one representative group per class** that intersects
//!    the run's covered range (the whole universe, or the shard's
//!    slice) — representatives are passed as explicit groups, never via
//!    `fault_range`, so a class whose representative lives outside the
//!    shard still simulates;
//! 3. fan each representative's verdict back out to every covered
//!    member and recompute the aggregate tallies from the fanned rows.
//!
//! Step 3 is sound because the PPSFP engines replay the exact same
//! deterministic batch stream for every fault group: a group's outcome
//! depends only on its faulty circuit function, which canonicalisation
//! preserves (see `scdp_analyze::collapse`). Sharding composes for the
//! same reason — collapse-then-shard and shard-then-collapse both
//! reduce to "each covered index gets its class verdict".

use scdp_analyze::CollapsedUniverse;
use scdp_netlist::{Netlist, StuckAtLine};
use std::collections::HashMap;
use std::ops::Range;

/// Which representative groups to simulate for one (possibly sharded)
/// collapsed run, and how to fan verdicts back out.
pub(crate) struct CollapsePlan {
    /// Representative groups to hand to the engine, in first-use order.
    pub rep_groups: Vec<Vec<StuckAtLine>>,
    /// `slot_of[i]` — index into `rep_groups` (and thus into the
    /// engine's `per_fault`) for the `i`-th *covered* original group.
    pub slot_of: Vec<usize>,
    /// Classes over the full group universe (telemetry:
    /// `collapse.classes`).
    pub classes_total: usize,
}

impl CollapsePlan {
    /// Canonicalises `groups` against `netlist` and selects the
    /// representatives needed to cover `covered` (a range of original
    /// group indices).
    pub(crate) fn build(
        netlist: &Netlist,
        groups: &[Vec<StuckAtLine>],
        covered: Range<u64>,
    ) -> CollapsePlan {
        let cu = CollapsedUniverse::build(netlist);
        let cg = cu.collapse_groups(groups);
        let mut slot: HashMap<usize, usize> = HashMap::new();
        let mut rep_groups = Vec::new();
        let mut slot_of = Vec::with_capacity((covered.end - covered.start) as usize);
        for i in covered {
            let class = cg.class_of[i as usize];
            let s = *slot.entry(class).or_insert_with(|| {
                rep_groups.push(cg.rep_groups[class].clone());
                rep_groups.len() - 1
            });
            slot_of.push(s);
        }
        CollapsePlan {
            rep_groups,
            slot_of,
            classes_total: cg.rep_groups.len(),
        }
    }
}
