//! Gate-level cross-validation (E7): the paper claims its coverage
//! analysis is "independent of the actual implementation … with a carry
//! look-ahead implementation of an adder, as well as with a ripple
//! carry". This binary runs structural stuck-at campaigns on generated
//! self-checking add datapaths built from **ripple-carry**,
//! **carry-lookahead** and **carry-save** adder realisations in one
//! campaign and compares their coverage, plus the array-multiplier
//! worst case.
//!
//! Faults are injected per instance-local site and *correlated* across
//! the nominal and checking instances (same physical unit reused), the
//! worst case of §4. All campaigns run on the bit-parallel engine of
//! `scdp-sim` (64 packed vectors per evaluation, good machine shared
//! per batch, fault universe spread across threads); the scalar
//! `Netlist::eval_nets` path survives as the differential-testing
//! oracle (`--oracle` re-checks one technique against it).
//!
//! Usage:
//!   gate_xval [--width N] [--samples N] [--seed S] [--threads N] [--oracle]
//!
//! Widths whose input space exceeds 2^20 vectors (width > 10) switch to
//! seeded Monte-Carlo sampling automatically — `--width 16`, infeasible
//! on the scalar path, completes in seconds this way.

use scdp_bench::{arg_value, has_flag, pct, scalar_add_oracle, timed};
use scdp_core::{Operator, Technique};
use scdp_netlist::gen::{
    self_checking, self_checking_add_with, AdderRealisation, SelfCheckingSpec,
};
use scdp_sim::{correlated_coverage, par, InputPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let width: u32 = arg_value(&args, "--width")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let samples: u64 = arg_value(&args, "--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 16);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDA7E_2005);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(par::default_threads);

    let plan = plan_for(width, samples, seed);
    match plan {
        InputPlan::Exhaustive => println!(
            "Gate-level cross-validation, width {width} (correlated shared-unit faults, \
             exhaustive inputs, {threads} threads)\n"
        ),
        InputPlan::Sampled { vectors, seed } => println!(
            "Gate-level cross-validation, width {width} (correlated shared-unit faults, \
             {vectors} sampled inputs, seed {seed:#x}, {threads} threads)\n"
        ),
    }

    for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
        let mut row = format!("{tech:<9}");
        for real in AdderRealisation::ALL {
            let dp = self_checking_add_with(width, tech, real);
            let r = timed(&format!("{} {tech}", real.label()), || {
                correlated_coverage(&dp, plan, threads)
            });
            row.push_str(&format!(
                "  {} coverage {}  ({} sites)",
                real.label(),
                pct(r.coverage()),
                r.sites
            ));
        }
        println!("{row}");
    }
    println!("\nAll three realisations sit in the same coverage band — the functional-level");
    println!("analysis of Table 2 transfers across adder implementations.");

    println!("\nGate-level multiplier worst case (correlated shared-unit stuck-ats):");
    for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Mul,
            technique: tech,
            width,
        });
        let r = timed(&format!("mul {tech}"), || {
            correlated_coverage(&dp, plan, threads)
        });
        println!(
            "{tech:<9}  x coverage {}  ({} sites)   (paper Table 1, 8-bit: 96.22 / 96.38 / 97.43%)",
            pct(r.coverage()),
            r.sites
        );
    }
    println!("Gate-level multiplier faults mask substantially more than truth-table");
    println!("cell faults (cf. table1), closing most of the Table 1 x-row gap.");

    if has_flag(&args, "--oracle") {
        let dp =
            self_checking_add_with(width.min(4), Technique::Both, AdderRealisation::RippleCarry);
        let engine_cov = correlated_coverage(&dp, InputPlan::Exhaustive, threads);
        let scalar_cov = timed("scalar oracle", || scalar_add_oracle(&dp, width.min(4)));
        println!(
            "\nOracle check (width {}, Both): engine {} vs scalar {} — {}",
            width.min(4),
            pct(engine_cov.coverage()),
            pct(scalar_cov),
            if (engine_cov.coverage() - scalar_cov).abs() < 1e-12 {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
    }
}

/// Exhaustive inputs while the space is small; Monte-Carlo beyond.
fn plan_for(width: u32, samples: u64, seed: u64) -> InputPlan {
    InputPlan::auto(2 * width as usize, samples, seed)
}
