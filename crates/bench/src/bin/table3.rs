//! Regenerates **Table 3** of the paper: the FIR case study through the
//! reliable co-design flow — hardware latency/frequency/area for
//! {plain, with SCK, embedded SCK} × {min area, min latency}, plus the
//! software execution-time and code-size comparison.
//!
//! Hardware rows come from the `scdp-hls` + `scdp-codesign` models; the
//! software rows print both the instruction-level model and a measured
//! wall-clock run of the real `scdp-fir` implementations (use the
//! Criterion bench `fir_sw` for rigorous timing).
//!
//! Usage:
//!   table3 [--taps N] [--sw-samples N]

use scdp_bench::{timed, Bench, CliArgs};
use scdp_codesign::{CodesignFlow, Goal};
use scdp_fir::{fir_body_dfg, EmbeddedFir, PlainFir, SckFir};
use scdp_hls::SckStyle;

fn ns_to_s(ns: f64) -> f64 {
    ns / 1e9
}

const PAPER_HW: [(&str, &str, &str, f64, u32); 6] = [
    ("FIR", "min area", "2 + 7n", 20.0, 412),
    ("FIR", "min latency", "2 + 5n", 20.0, 477),
    ("FIR with SCK", "min area", "2 + 10n", 16.67, 1926),
    ("FIR with SCK", "min latency", "2 + 5n", 20.0, 1593),
    ("FIR embedded SCK", "min area", "2 + 9n", 15.38, 634),
    ("FIR embedded SCK", "min latency", "2 + 5n", 20.0, 861),
];

const PAPER_SW: [(&str, f64, u32); 3] = [
    ("FIR", 6.83, 889),
    ("FIR with SCK", 10.02, 893),
    ("FIR embedded SCK", 7.90, 889),
];

fn main() {
    let args = CliArgs::parse();
    let taps: usize = args.value_or("--taps", 64);
    let sw_samples: usize = args.value_or("--sw-samples", 200_000);

    let flow = CodesignFlow::default();
    let body = fir_body_dfg();
    let report = timed("hw flow", || flow.table3(&body));

    println!("Table 3 — application of the methodology to the FIR\n");
    println!("Hardware implementation");
    println!(
        "{:<18} {:<12} {:>9} {:>10} {:>7}   paper: {:>8} {:>8} {:>6}",
        "", "goal", "latency", "fmax", "slices", "latency", "fmax", "CLB"
    );
    let styles = [
        (SckStyle::Plain, "FIR"),
        (SckStyle::Full, "FIR with SCK"),
        (SckStyle::Embedded, "FIR embedded SCK"),
    ];
    let mut idx = 0;
    for (style, label) in styles {
        for goal in [Goal::MinArea, Goal::MinLatency] {
            let row = report.row(style, goal).expect("row");
            let (_, _, p_lat, p_fmax, p_clb) = PAPER_HW[idx];
            idx += 1;
            println!(
                "{:<18} {:<12} {:>9} {:>8.2}M {:>7.0}   paper: {:>8} {:>7.2}M {:>6}",
                label,
                match goal {
                    Goal::MinArea => "min area",
                    Goal::MinLatency => "min latency",
                },
                row.hw.latency_formula(),
                row.hw.fmax_mhz,
                row.hw.area_slices,
                p_lat,
                p_fmax,
                p_clb,
            );
        }
    }

    println!("\nSoftware implementation ({taps}-tap FIR, {sw_samples} samples)");
    println!(
        "{:<18} {:>12} {:>12} {:>10}   paper: {:>7} {:>8}",
        "", "model cyc/it", "measured s", "size KB", "exe s", "size KB"
    );
    let coeffs: Vec<i32> = (0..taps as i32).map(|i| (i * 7 % 23) - 11).collect();
    let xs: Vec<i32> = (0..sw_samples as i64)
        .map(|i| ((i * 31) % 201 - 100) as i32)
        .collect();

    // Measured through the shared mini-bench harness (median of
    // several passes; writes BENCH_table3_sw.json for the trajectory).
    let mut bench = Bench::new("table3_sw");
    let n = xs.len() as u64;
    let plain_t = ns_to_s(bench.sample_elements("plain_autovec", 5, n, &mut || {
        // The compiler auto-vectorizes this MAC loop.
        let mut plain = PlainFir::new(coeffs.clone());
        let mut sink = 0i64;
        for &x in &xs {
            sink = sink.wrapping_add(i64::from(plain.process(x)));
        }
        sink
    }));
    // Scalar plain baseline: black_box per sample suppresses the
    // vectorization a 2004-era compiler would not have performed,
    // giving the ratio comparable to the paper's 6.83 s baseline.
    let scalar_t = ns_to_s(bench.sample_elements("plain_scalar", 5, n, &mut || {
        let mut scalar = PlainFir::new(coeffs.clone());
        let mut sink = 0i64;
        for &x in &xs {
            sink = sink.wrapping_add(i64::from(std::hint::black_box(
                scalar.process(std::hint::black_box(x)),
            )));
        }
        sink
    }));
    let sck_t = ns_to_s(bench.sample_elements("sck", 5, n, &mut || {
        let mut sck: SckFir = SckFir::new(coeffs.clone());
        let mut sink = 0i64;
        for &x in &xs {
            sink = sink.wrapping_add(i64::from(sck.process(x).value()));
        }
        sink
    }));
    let emb_t = ns_to_s(bench.sample_elements("embedded", 5, n, &mut || {
        let mut emb = EmbeddedFir::new(coeffs.clone());
        let mut sink = 0i64;
        for &x in &xs {
            sink = sink.wrapping_add(i64::from(emb.process(x)));
        }
        assert!(!emb.error());
        sink
    }));
    bench.finish();

    for ((style, label), measured) in styles.iter().zip([plain_t, sck_t, emb_t]) {
        let sw = report.row(*style, Goal::MinArea).expect("row").sw;
        let (_, p_time, p_kb) = PAPER_SW[match style {
            SckStyle::Plain => 0,
            SckStyle::Full => 1,
            SckStyle::Embedded => 2,
        }];
        println!(
            "{:<18} {:>12} {:>12.3} {:>10}   paper: {:>7.2} {:>8}",
            label,
            sw.cycles_per_iteration,
            measured,
            sw.code_bytes / 1024,
            p_time,
            p_kb,
        );
    }
    println!(
        "\nmeasured slow-down vs auto-vectorized plain: SCK {:.2}x, embedded {:.2}x",
        sck_t / plain_t,
        emb_t / plain_t
    );
    println!(
        "measured slow-down vs scalar plain baseline:  SCK {:.2}x (paper 1.47x), embedded {:.2}x (paper 1.16x)",
        sck_t / scalar_t,
        emb_t / scalar_t
    );
}
