//! Static netlist analysis for self-checking data-paths.
//!
//! Four layers over [`scdp_netlist::Netlist`], all pure structural
//! analysis (no simulation):
//!
//! * [`collapse`] — classic stuck-at fault-equivalence collapsing.
//!   [`CollapsedUniverse`] maps every [`scdp_netlist::StuckAtLine`] to
//!   an equivalence-class representative whose *complete faulty
//!   function* matches, so campaign engines can simulate
//!   representatives only and fan verdicts back out bit-identically
//!   (`scdp-campaign`'s `.collapse(true)`).
//! * [`deduce`] — deductive untestability proofs. [`PrunedUniverse`]
//!   classifies fault groups that provably behave like the fault-free
//!   machine on every vector (constant-redundant, blocked-path, or
//!   unobservable-cone), so campaigns can settle them from a baseline
//!   probe without simulating (`scdp-campaign`'s `.prune(true)`).
//! * [`dominance`] — [`DominatorChains`] closes
//!   [`CollapsedUniverse::dominance_edges`] into per-line dominator
//!   chains: a dominator that simulates completely silent settles
//!   every line it dominates, also part of `.prune(true)`.
//! * [`lint()`] — structural sanity checks that catch elaboration bugs
//!   (floating nets, combinational cycles, dead logic, alarms that can
//!   never fire or never observe a region) before any vector runs;
//!   surfaced on the CLI as `scdp lint`.

pub mod collapse;
pub mod deduce;
pub mod dominance;
pub mod lint;

pub use collapse::{CollapsedGroups, CollapsedUniverse};
pub use deduce::{PrunedUniverse, UntestableReason, Verdict};
pub use dominance::DominatorChains;
pub use lint::{lint, Diagnostic, LintOptions, LintReport, Severity};
