//! The paper's Table 1: overloading techniques per operator.

use std::fmt;

/// A checkable arithmetic operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operator {
    /// Addition (`+`).
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`, with `%` for the remainder used by the check).
    Div,
}

impl Operator {
    /// All four operators, in Table 1 order.
    pub const ALL: [Operator; 4] = [Operator::Add, Operator::Sub, Operator::Mul, Operator::Div];

    /// The operator's symbol.
    #[must_use]
    pub const fn symbol(self) -> &'static str {
        match self {
            Operator::Add => "+",
            Operator::Sub => "-",
            Operator::Mul => "*",
            Operator::Div => "/",
        }
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An overloading technique from the paper's Table 1.
///
/// Each operator has two inverse-operation checking strategies and their
/// combination:
///
/// | Operator | Tech1 | Tech2 |
/// |----------|-------|-------|
/// | `+` (`ris = op1 + op2`) | `op2' = ris − op1`, check `op2 == op2'` | `op1' = ris − op2`, check `op1 == op1'` |
/// | `−` (`ris = op1 − op2`) | `op1' = ris + op2`, check `op1 == op1'` | `ris' = op2 − op1`, check `0 == ris + ris'` |
/// | `×` (`ris = op1 × op2`) | `ris' = (−op1) × op2`, check `0 == ris + ris'` | `ris' = op1 × (−op2)`, check `0 == ris + ris'` |
/// | `/` (`ris = op1 / op2`) | `op1' = ris × op2 + (op1 % op2)`, check `op1 == op1'` | `op1' = −ris × op2 − (op1 % op2)`, check `−op1 == op1'` |
///
/// [`Technique::Both`] applies the two checks together (higher fault
/// coverage, higher cost). The paper does not evaluate `Both` for `/`;
/// this implementation supports it as an extension.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Technique {
    /// The first overloading strategy of Table 1.
    Tech1,
    /// The second (dual) overloading strategy of Table 1.
    Tech2,
    /// Both strategies combined.
    Both,
}

impl Technique {
    /// All three techniques, in Table 1 column order.
    pub const ALL: [Technique; 3] = [Technique::Tech1, Technique::Tech2, Technique::Both];

    /// `true` if the Tech1 check is active.
    #[must_use]
    pub const fn uses_tech1(self) -> bool {
        matches!(self, Technique::Tech1 | Technique::Both)
    }

    /// `true` if the Tech2 check is active.
    #[must_use]
    pub const fn uses_tech2(self) -> bool {
        matches!(self, Technique::Tech2 | Technique::Both)
    }

    /// Human-readable description of the hidden operations performed for
    /// `op`, as printed in Table 1.
    #[must_use]
    pub const fn describe(self, op: Operator) -> &'static str {
        match (op, self) {
            (Operator::Add, Technique::Tech1) => "op2' = ris - op1; op2 == op2'",
            (Operator::Add, Technique::Tech2) => "op1' = ris - op2; op1 == op1'",
            (Operator::Add, Technique::Both) => "both inverse subtractions",
            (Operator::Sub, Technique::Tech1) => "op1' = ris + op2; op1 == op1'",
            (Operator::Sub, Technique::Tech2) => "ris' = op2 - op1; 0 == ris + ris'",
            (Operator::Sub, Technique::Both) => "inverse addition and dual subtraction",
            (Operator::Mul, Technique::Tech1) => "ris' = (-op1) x op2; 0 == ris + ris'",
            (Operator::Mul, Technique::Tech2) => "ris' = op1 x (-op2); 0 == ris + ris'",
            (Operator::Mul, Technique::Both) => "both negated multiplications",
            (Operator::Div, Technique::Tech1) => "op1' = ris x op2 + (op1 % op2); op1 == op1'",
            (Operator::Div, Technique::Tech2) => "op1' = -ris x op2 - (op1 % op2); -op1 == op1'",
            (Operator::Div, Technique::Both) => "both recompositions (extension)",
        }
    }

    /// Number of *hidden* operator-level operations the technique adds to
    /// one nominal operation (comparisons excluded — they are checker
    /// hardware, not functional units). Used by cost models.
    #[must_use]
    pub const fn hidden_ops(self, op: Operator) -> u32 {
        let single = match op {
            Operator::Add => 1, // one subtraction
            Operator::Sub => 1, // one addition (Tech1) / one sub (Tech2 core)
            Operator::Mul => 2, // one negated multiply + one zero-check add
            Operator::Div => 3, // remainder op + multiply + recomposition add
        };
        match self {
            Technique::Tech1 => single,
            Technique::Tech2 => {
                // Sub Tech2 needs the dual subtraction *and* the zero-check
                // addition.
                match op {
                    Operator::Sub => 2,
                    _ => single,
                }
            }
            Technique::Both => match op {
                Operator::Sub => single + 2,
                _ => single * 2,
            },
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::Tech1 => "Tech1",
            Technique::Tech2 => "Tech2",
            Technique::Both => "Tech 1&2",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags() {
        assert!(Technique::Tech1.uses_tech1());
        assert!(!Technique::Tech1.uses_tech2());
        assert!(Technique::Both.uses_tech1());
        assert!(Technique::Both.uses_tech2());
    }

    #[test]
    fn descriptions_cover_table1() {
        for op in Operator::ALL {
            for t in Technique::ALL {
                assert!(!t.describe(op).is_empty());
            }
        }
    }

    #[test]
    fn hidden_op_counts() {
        assert_eq!(Technique::Tech1.hidden_ops(Operator::Add), 1);
        assert_eq!(Technique::Both.hidden_ops(Operator::Add), 2);
        assert_eq!(Technique::Tech2.hidden_ops(Operator::Sub), 2);
        assert_eq!(Technique::Both.hidden_ops(Operator::Sub), 3);
        assert_eq!(Technique::Tech1.hidden_ops(Operator::Mul), 2);
        assert_eq!(Technique::Both.hidden_ops(Operator::Mul), 4);
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(Operator::Add.to_string(), "+");
        assert_eq!(Operator::Div.symbol(), "/");
    }
}
