//! Parallel gate-level campaign driver with fault dropping.

use crate::batch::InputPlan;
use crate::engine::Engine;
use crate::error::SimError;
use crate::par;
use scdp_coverage::TechTally;
use scdp_netlist::gen::SelfCheckingDatapath;
use scdp_netlist::StuckAtLine;
use scdp_obs::Recorder;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// When a fault leaves the simulated universe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Keep every fault live through the whole input space, producing
    /// exact situation tallies — what coverage classification needs.
    Never,
    /// Drop a fault after the first batch in which a check fires
    /// (classic detectability fault grading). Tallies are partial.
    OnDetect,
    /// Drop a fault after the first batch containing an undetected
    /// erroneous lane — the fault is proven *unsafe* and further
    /// simulation cannot change that verdict. Tallies are partial.
    OnEscape,
}

/// Per-fault result of a campaign.
#[derive(Clone, Debug, Default)]
pub struct FaultOutcome {
    /// Situation tallies (exact for [`DropPolicy::Never`], partial up
    /// to the dropping batch otherwise).
    pub tally: TechTally,
    /// A check fired in at least one simulated situation.
    pub detected: bool,
    /// At least one simulated situation was an undetected error.
    pub escaped: bool,
    /// Situations simulated before the fault was dropped (`None` when
    /// it stayed live to the end).
    pub dropped_after: Option<u64>,
}

/// Aggregate result of a gate-level campaign.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// One outcome per fault group, in universe order.
    pub per_fault: Vec<FaultOutcome>,
    /// Sum of all per-fault tallies.
    pub tally: TechTally,
    /// Situations actually simulated (drops make this smaller than
    /// `faults × vectors`).
    pub simulated: u64,
}

impl CampaignSummary {
    /// Fraction of faults with at least one alarmed situation.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| f.detected).count() as f64 / self.per_fault.len() as f64
    }

    /// Fraction of faults that never produced an undetected error.
    #[must_use]
    pub fn safe_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| !f.escaped).count() as f64 / self.per_fault.len() as f64
    }
}

/// A configured bit-parallel campaign: a compiled engine, a universe of
/// fault groups (each group is one multiple-stuck-at fault — e.g. the
/// correlated copies of one local site across unit instances), an input
/// plan and a drop policy.
///
/// The driver partitions the universe into contiguous chunks, one per
/// worker; every worker re-generates the same deterministic batch
/// stream, simulates the good machine once per batch, then replays each
/// of its live faults against the batch. Results are therefore
/// independent of the worker count.
#[derive(Clone, Debug)]
pub struct EngineCampaign<'a> {
    engine: &'a Engine,
    groups: Vec<Vec<StuckAtLine>>,
    plan: InputPlan,
    drop: DropPolicy,
    threads: usize,
    range: Option<Range<usize>>,
    recorder: Option<Arc<Recorder>>,
}

impl<'a> EngineCampaign<'a> {
    /// Starts a campaign over `groups` with exhaustive inputs, no
    /// dropping and all available cores — the engine-room entry the
    /// unified `scdp_campaign::{Scenario, CampaignSpec}` surface drives
    /// after validating the configuration with typed errors.
    #[must_use]
    pub fn over(engine: &'a Engine, groups: Vec<Vec<StuckAtLine>>) -> Self {
        let mut groups = groups;
        for g in &mut groups {
            g.sort_by_key(|f| (f.site.gate, f.site.pin));
        }
        Self {
            engine,
            groups,
            plan: InputPlan::Exhaustive,
            drop: DropPolicy::Never,
            threads: par::default_threads(),
            range: None,
            recorder: None,
        }
    }

    /// Selects the input plan.
    #[must_use]
    pub fn plan(mut self, plan: InputPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Selects the drop policy.
    #[must_use]
    pub fn drop_policy(mut self, drop: DropPolicy) -> Self {
        self.drop = drop;
        self
    }

    /// Caps the worker thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Restricts simulation to the universe subrange `range` — the
    /// shard-scoped iteration of a partitioned campaign. The summary's
    /// `per_fault` then covers only `range`, in universe order; because
    /// every fault replays the same deterministic batch stream
    /// independently, per-fault outcomes are bit-identical to the
    /// corresponding slice of an unrestricted run.
    ///
    /// # Panics
    ///
    /// `run` panics if the range exceeds the universe (campaign
    /// front-ends validate shard plans before reaching this driver).
    #[must_use]
    pub fn fault_range(mut self, range: Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// Attaches a telemetry recorder. The driver then counts fault
    /// groups, per-fault batch evaluations, dropped faults and
    /// simulated situations under `engine.*` (all thread-count and
    /// shard invariant), plus per-worker busy time under
    /// `engine.busy_ns`.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The universe subrange that will be simulated.
    fn scoped(&self) -> &[Vec<StuckAtLine>] {
        match &self.range {
            None => &self.groups,
            Some(r) => {
                assert!(
                    r.start <= r.end && r.end <= self.groups.len(),
                    "fault range {r:?} exceeds the {}-group universe",
                    self.groups.len()
                );
                &self.groups[r.clone()]
            }
        }
    }

    /// Validates every in-scope fault group against the compiled
    /// netlist — call before [`EngineCampaign::run`] to surface
    /// malformed specs as typed errors instead of feeding them to the
    /// packed evaluator.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found, in universe order.
    pub fn check(&self) -> Result<(), SimError> {
        for group in self.scoped() {
            self.engine.check_faults(group)?;
        }
        Ok(())
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if a fault group names a gate or pin the compiled
    /// netlist does not have — validate with [`EngineCampaign::check`]
    /// first for a typed error (the unified `scdp-campaign` surface
    /// does); silently dropping such lines would produce plausible but
    /// wrong tallies.
    #[must_use]
    pub fn run(&self) -> CampaignSummary {
        if let Err(e) = self.check() {
            panic!("invalid fault spec: {e} (validate with EngineCampaign::check)");
        }
        let scoped = self.scoped();
        let per_fault = par::map_chunks(scoped, self.threads, |chunk| self.run_chunk(chunk));
        let mut tally = TechTally::default();
        let mut simulated = 0u64;
        for f in &per_fault {
            tally += f.tally;
            simulated += f.tally.total();
        }
        CampaignSummary {
            per_fault,
            tally,
            simulated,
        }
    }

    /// Simulates one contiguous chunk of the fault universe on the
    /// calling thread (PPSFP inner loop).
    fn run_chunk(&self, chunk: &[Vec<StuckAtLine>]) -> Vec<FaultOutcome> {
        let busy = Instant::now();
        let engine = self.engine;
        let mut outcomes: Vec<FaultOutcome> = vec![FaultOutcome::default(); chunk.len()];
        let mut live: Vec<usize> = (0..chunk.len()).collect();
        let mut good = Vec::new();
        let mut faulty = Vec::new();
        let mut batch_evals = 0u64;
        for batch in self.plan.stream(engine.input_bits()) {
            if live.is_empty() {
                break;
            }
            engine.eval_batch_into(&batch, &[], &mut good);
            debug_assert_eq!(
                engine.compare(&good, &good, batch.mask()).alarm,
                0,
                "good machine must be alarm-free"
            );
            let drop = self.drop;
            batch_evals += live.len() as u64;
            live.retain(|&k| {
                engine.eval_batch_into(&batch, &chunk[k], &mut faulty);
                let v = engine.compare(&good, &faulty, batch.mask());
                let (cs, cd, ed, eu) = v.counts();
                let o = &mut outcomes[k];
                o.tally.correct_silent += cs;
                o.tally.correct_detected += cd;
                o.tally.error_detected += ed;
                o.tally.error_undetected += eu;
                o.detected |= cd + ed > 0;
                o.escaped |= eu > 0;
                let decided = match drop {
                    DropPolicy::Never => false,
                    DropPolicy::OnDetect => o.detected,
                    DropPolicy::OnEscape => o.escaped,
                };
                if decided {
                    o.dropped_after = Some(o.tally.total());
                }
                !decided
            });
        }
        if let Some(rec) = &self.recorder {
            record_chunk_telemetry(rec, "engine", &outcomes, batch_evals, &busy);
        }
        outcomes
    }
}

/// Flushes one chunk's telemetry into `rec` under the `prefix.*`
/// namespace. Shared by the combinational and sequential drivers; one
/// flush per chunk keeps the atomics entirely off the inner loop.
pub(crate) fn record_chunk_telemetry(
    rec: &Recorder,
    prefix: &str,
    outcomes: &[FaultOutcome],
    batch_evals: u64,
    busy: &Instant,
) {
    let hist = rec.histogram(&format!("{prefix}.fault_situations"));
    let mut dropped = 0u64;
    let mut situations = 0u64;
    for o in outcomes {
        let total = o.tally.total();
        situations += total;
        dropped += u64::from(o.dropped_after.is_some());
        hist.record(total);
    }
    rec.add(&format!("{prefix}.faults"), outcomes.len() as u64);
    rec.add(&format!("{prefix}.fault_batches"), batch_evals);
    rec.add(&format!("{prefix}.faults_dropped"), dropped);
    rec.add(&format!("{prefix}.situations"), situations);
    rec.add(
        &format!("{prefix}.busy_ns"),
        u64::try_from(busy.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
}

/// Summary of one gate-level cross-validation campaign.
#[derive(Clone, Debug)]
pub struct XvalReport {
    /// Number of per-instance-local stuck-at sites (each simulated
    /// stuck-at-0 and stuck-at-1).
    pub sites: usize,
    /// Aggregate situation tallies across the whole universe.
    pub tally: TechTally,
}

impl XvalReport {
    /// The paper's coverage metric: fraction of situations that are not
    /// undetected errors.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.tally.coverage()
    }
}

fn datapath_coverage(
    dp: &SelfCheckingDatapath,
    plan: InputPlan,
    threads: usize,
    correlated: bool,
) -> XvalReport {
    let engine = Engine::new(&dp.netlist);
    let sites = dp.local_sites();
    let mut groups = Vec::with_capacity(sites.len() * 2);
    for site in &sites {
        for value in [false, true] {
            groups.push(if correlated {
                dp.correlated_fault(*site, value)
            } else {
                dp.nominal_fault(*site, value)
            });
        }
    }
    let summary = EngineCampaign::over(&engine, groups)
        .plan(plan)
        .threads(threads)
        .run();
    XvalReport {
        sites: sites.len(),
        tally: summary.tally,
    }
}

/// Full-tally coverage of a self-checking datapath under **correlated**
/// (shared physical unit) faults — the paper's worst case and the
/// workload of `gate_xval`.
#[must_use]
pub fn correlated_coverage(
    dp: &SelfCheckingDatapath,
    plan: InputPlan,
    threads: usize,
) -> XvalReport {
    datapath_coverage(dp, plan, threads, true)
}

/// Full-tally coverage with the fault confined to the nominal unit —
/// the dedicated-checker allocation (§2.1).
#[must_use]
pub fn dedicated_coverage(
    dp: &SelfCheckingDatapath,
    plan: InputPlan,
    threads: usize,
) -> XvalReport {
    datapath_coverage(dp, plan, threads, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::{Operator, Technique};
    use scdp_netlist::gen::{self_checking, SelfCheckingSpec};

    fn add_dp(width: u32, tech: Technique) -> SelfCheckingDatapath {
        self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: tech,
            width,
        })
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let dp = add_dp(3, Technique::Both);
        let a = correlated_coverage(&dp, InputPlan::Exhaustive, 1);
        let b = correlated_coverage(&dp, InputPlan::Exhaustive, 4);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.sites, b.sites);
    }

    #[test]
    fn dedicated_allocation_catches_every_observable_error() {
        let dp = add_dp(3, Technique::Tech1);
        let r = dedicated_coverage(&dp, InputPlan::Exhaustive, 2);
        assert_eq!(r.tally.error_undetected, 0);
        assert!(r.tally.error_detected > 0);
    }

    #[test]
    fn correlated_faults_escape_sometimes() {
        let dp = add_dp(3, Technique::Tech1);
        let r = correlated_coverage(&dp, InputPlan::Exhaustive, 2);
        assert!(
            r.tally.error_undetected > 0,
            "shared-unit masking must exist"
        );
        assert!(r.coverage() < 1.0);
    }

    #[test]
    fn dropping_preserves_verdicts_and_saves_work() {
        let dp = add_dp(6, Technique::Both);
        let engine = Engine::new(&dp.netlist);
        let mut groups = Vec::new();
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        let full = EngineCampaign::over(&engine, groups.clone())
            .drop_policy(DropPolicy::Never)
            .threads(2)
            .run();
        let dropped = EngineCampaign::over(&engine, groups)
            .drop_policy(DropPolicy::OnDetect)
            .threads(2)
            .run();
        for (f, d) in full.per_fault.iter().zip(&dropped.per_fault) {
            assert_eq!(
                f.detected, d.detected,
                "dropping must not change the verdict"
            );
        }
        assert!(
            dropped.simulated * 4 < full.simulated,
            "dropping should cut simulated situations substantially \
             ({} vs {})",
            dropped.simulated,
            full.simulated
        );
    }

    #[test]
    fn telemetry_counters_are_thread_invariant() {
        let dp = add_dp(5, Technique::Both);
        let engine = Engine::new(&dp.netlist);
        let mut groups = Vec::new();
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        let run = |threads: usize| {
            let rec = Arc::new(Recorder::new());
            let summary = EngineCampaign::over(&engine, groups.clone())
                .drop_policy(DropPolicy::OnDetect)
                .threads(threads)
                .recorder(Arc::clone(&rec))
                .run();
            (summary, rec.snapshot())
        };
        let (s1, t1) = run(1);
        let (s4, t4) = run(4);
        assert_eq!(t1.deterministic_counters(), t4.deterministic_counters());
        assert_eq!(t1.histograms, t4.histograms);
        assert_eq!(t1.counter("engine.faults"), Some(groups.len() as u64));
        assert_eq!(t1.counter("engine.situations"), Some(s1.simulated));
        assert_eq!(s1.simulated, s4.simulated);
        let dropped = s1
            .per_fault
            .iter()
            .filter(|f| f.dropped_after.is_some())
            .count() as u64;
        assert_eq!(t1.counter("engine.faults_dropped"), Some(dropped));
        assert!(t1.counter("engine.busy_ns").is_some(), "busy time recorded");
        assert!(
            t1.counter("engine.fault_batches").unwrap() > 0,
            "batch evaluations recorded"
        );
    }

    #[test]
    fn sampled_campaign_is_reproducible_across_threads() {
        let dp = add_dp(6, Technique::Both);
        let plan = InputPlan::Sampled {
            vectors: 512,
            seed: 0xDA7E,
        };
        let a = correlated_coverage(&dp, plan, 1);
        let b = correlated_coverage(&dp, plan, 3);
        assert_eq!(a.tally, b.tally);
    }
}
