//! Netlist exports: structural Verilog and Graphviz DOT.

use crate::{GateKind, Netlist};
use std::fmt::Write as _;

/// Renders the netlist as a structural Verilog module (one continuous
/// assignment per gate).
///
/// The output is synthesizable by any Verilog tool chain; it is the
/// hand-off point from this repository's generators to a conventional
/// implementation flow (the role Synopsys CoCentric plays in the paper's
/// Figure 3).
///
/// # Example
///
/// ```
/// use scdp_netlist::{export, gen};
///
/// let v = export::to_verilog(&gen::rca(4));
/// assert!(v.contains("module rca4"));
/// assert!(v.contains("assign"));
/// ```
#[must_use]
pub fn to_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let mut ports = Vec::new();
    if netlist.is_sequential() {
        ports.push("clk".to_string());
    }
    for (name, _) in netlist.inputs() {
        ports.push(name.clone());
    }
    for (name, _) in netlist.outputs() {
        ports.push(name.clone());
    }
    let _ = writeln!(out, "module {}({});", netlist.name(), ports.join(", "));
    if netlist.is_sequential() {
        let _ = writeln!(out, "  input clk;");
    }
    for (name, bus) in netlist.inputs() {
        let _ = writeln!(out, "  input [{}:0] {};", bus.len() - 1, name);
    }
    for (name, bus) in netlist.outputs() {
        let _ = writeln!(out, "  output [{}:0] {};", bus.len() - 1, name);
    }

    // Wire declarations for every non-input gate.
    let mut next_input = Vec::new();
    for (name, bus) in netlist.inputs() {
        for (i, net) in bus.iter().enumerate() {
            next_input.push((net.index(), format!("{name}[{i}]")));
        }
    }
    let input_name = |idx: usize| -> Option<&str> {
        next_input
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, n)| n.as_str())
    };

    let net_name = |idx: usize| -> String {
        input_name(idx).map_or_else(|| format!("n{idx}"), str::to_string)
    };

    for (i, gate) in netlist.gates().iter().enumerate() {
        match gate.kind {
            GateKind::Input => {}
            GateKind::Const(v) => {
                let _ = writeln!(out, "  wire n{i} = 1'b{};", u8::from(v));
            }
            GateKind::Not => {
                let a = net_name(gate.a.expect("not input").index());
                let _ = writeln!(out, "  wire n{i} = ~{a};");
            }
            GateKind::Buf => {
                let a = net_name(gate.a.expect("buf input").index());
                let _ = writeln!(out, "  wire n{i} = {a};");
            }
            GateKind::Dff => {
                // Declared here; the clocked process is emitted after
                // the wires so the D net's declaration precedes its use.
                let _ = writeln!(out, "  reg n{i} = 1'b0;");
            }
            kind => {
                let a = net_name(gate.a.expect("gate input a").index());
                let b = net_name(gate.b.expect("gate input b").index());
                let expr = match kind {
                    GateKind::And => format!("{a} & {b}"),
                    GateKind::Or => format!("{a} | {b}"),
                    GateKind::Xor => format!("{a} ^ {b}"),
                    GateKind::Nand => format!("~({a} & {b})"),
                    GateKind::Nor => format!("~({a} | {b})"),
                    GateKind::Xnor => format!("~({a} ^ {b})"),
                    _ => unreachable!("two-input kinds handled"),
                };
                let _ = writeln!(out, "  wire n{i} = {expr};");
            }
        }
    }
    if netlist.is_sequential() {
        let _ = writeln!(out, "  always @(posedge clk) begin");
        for (i, gate) in netlist.gates().iter().enumerate() {
            if gate.kind == GateKind::Dff {
                let d = net_name(gate.a.expect("dff D input").index());
                let _ = writeln!(out, "    n{i} <= {d};");
            }
        }
        let _ = writeln!(out, "  end");
    }
    for (name, bus) in netlist.outputs() {
        for (i, net) in bus.iter().enumerate() {
            let _ = writeln!(out, "  assign {name}[{i}] = {};", net_name(net.index()));
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Renders the netlist as a Graphviz DOT digraph (gates as nodes, nets as
/// edges), handy for inspecting small generated datapaths.
#[must_use]
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, gate) in netlist.gates().iter().enumerate() {
        let (label, shape) = match gate.kind {
            GateKind::Input => ("IN".to_string(), "invtriangle"),
            GateKind::Const(v) => (format!("{}", u8::from(v)), "plaintext"),
            k => (format!("{k:?}").to_uppercase(), "box"),
        };
        let _ = writeln!(out, "  n{i} [label=\"{label}\", shape={shape}];");
        if let Some(a) = gate.a {
            let _ = writeln!(out, "  n{} -> n{i};", a.index());
        }
        if let Some(b) = gate.b {
            let _ = writeln!(out, "  n{} -> n{i};", b.index());
        }
    }
    for (name, bus) in netlist.outputs() {
        for (i, net) in bus.iter().enumerate() {
            let _ = writeln!(
                out,
                "  \"{name}[{i}]\" [shape=triangle]; n{} -> \"{name}[{i}]\";",
                net.index()
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn verilog_contains_module_structure() {
        let v = to_verilog(&gen::rca(4));
        assert!(v.contains("module rca4(a, b, sum, cout);"), "{v}");
        assert!(v.contains("input [3:0] a;"));
        assert!(v.contains("output [3:0] sum;"));
        assert!(v.contains("endmodule"));
        // At least one gate per FA.
        assert!(v.matches(" ^ ").count() >= 8);
    }

    #[test]
    fn sequential_verilog_has_clock_and_registers() {
        let mut b = crate::NetlistBuilder::new("tick");
        let q = b.dff();
        let nq = b.not(q);
        b.connect_dff(q, nq);
        b.output("q", &[q]);
        let v = to_verilog(&b.finish());
        assert!(v.contains("module tick(clk, q);"), "{v}");
        assert!(v.contains("input clk;"));
        assert!(v.contains("reg n0 = 1'b0;"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("n0 <= n1;"));
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let d = to_dot(&gen::equal(2));
        assert!(d.starts_with("digraph"));
        assert!(d.contains("->"));
        assert!(d.contains("eq[0]"));
        assert!(d.ends_with("}\n"));
    }
}
