//! Regenerates **Table 2** of the paper: worst-case fault coverage of the
//! self-checking `+` operator on an n-bit ripple-carry adder, for the
//! three overloading strategies, when the same faulty unit executes the
//! nominal addition and its checking subtractions.
//!
//! Also reproduces the §4.1 in-text statistics for the 2-bit adder
//! (observable errors, detection-when-correct counts, per-fault coverage
//! range) with `--detail`, and the §2.1 dedicated-unit result (100%
//! coverage) with `--dual-unit`.
//!
//! All campaigns go through the unified `scdp-campaign` API; `--report
//! FILE` additionally writes the width-4 row's `CampaignReport` as
//! `scdp.campaign.report/v1` JSON.
//!
//! Usage:
//!   table2 [--detail] [--dual-unit] [--model gate|cell] [--samples N]
//!          [--seed S] [--gate] [--report FILE]

use scdp_bench::{pct, timed, CliArgs};
use scdp_campaign::{
    Backend, CampaignReport, ExecPolicy, FaultModel, InputSpace, Scenario, TechIndex,
};
use scdp_core::{Allocation, Operator, Technique};
use scdp_fault::SituationCount;

/// Paper values for reference printing: (bits, situations-as-printed,
/// tech1, tech2, both).
const PAPER: [(u32, &str, f64, f64, f64); 6] = [
    (1, "128", 95.31, 96.88, 97.66),
    (2, "1024", 96.88, 98.44, 98.83),
    (3, "6144", 97.40, 98.96, 99.22),
    (4, "7808*", 97.66, 99.22, 99.41),
    (8, "16x2^20", 98.05, 99.61, 99.71),
    (16, "6x2^30*", 98.18, 99.74, 99.80),
];

fn model_from(args: &CliArgs) -> FaultModel {
    match args.value::<String>("--model").as_deref() {
        Some("cell") => FaultModel::Cell,
        _ => FaultModel::FaGate,
    }
}

fn main() {
    let args = CliArgs::parse();
    let model = model_from(&args);
    let samples = args.samples(1 << 17);
    let seed = args.seed();
    let alloc = if args.flag("--dual-unit") {
        Allocation::Dedicated
    } else {
        Allocation::SingleUnit
    };

    println!("Table 2 — experimental results for operator + ({model} fault model, {alloc:?})");
    println!(
        "{:>4} {:>16} {:>9} {:>9} {:>9}   paper: {:>7} {:>7} {:>7}",
        "bits", "situations", "Tech1", "Tech2", "Tech 1&2", "Tech1", "Tech2", "1&2"
    );
    for (bits, paper_situations, p1, p2, pb) in PAPER {
        let space = if bits <= 8 {
            InputSpace::Exhaustive
        } else {
            InputSpace::Sampled {
                per_fault: samples,
                seed,
            }
        };
        let report = timed(&format!("n={bits}"), || {
            Scenario::new(Operator::Add, bits)
                .allocation(alloc)
                .campaign()
                .fault_model(model)
                .input_space(space)
                .run()
                .expect("valid Table 2 scenario")
        });
        let cov = |t: TechIndex| pct(report.coverage_of(t).expect("functional fills all columns"));
        println!(
            "{:>4} {:>15}{} {:>9} {:>9} {:>9}   paper: {:>7} {:>7} {:>7}",
            bits,
            report.total_situations(),
            if report.sampled() { "~" } else { " " },
            cov(TechIndex::Tech1),
            cov(TechIndex::Tech2),
            cov(TechIndex::Both),
            p1,
            p2,
            pb,
        );
        // The paper's printed counts for n=4 and n=16 (marked *) violate
        // its own 32·n·2^(2n) formula; we print the formula value.
        let formula = SituationCount::rca(bits).total();
        if !report.sampled() {
            assert_eq!(u128::from(report.total_situations()), formula);
        }
        let _ = paper_situations;
        if bits == 4 {
            if let Some(path) = args.value::<String>("--report") {
                std::fs::write(&path, report.to_json()).expect("write report JSON");
                eprintln!("[wrote {path}]");
            }
        }
    }
    println!("(* = the paper's printed count differs from its own formula; see EXPERIMENTS.md)");

    if args.flag("--detail") {
        detail(model);
    }
    if args.flag("--gate") {
        gate_section(&args);
    }
}

/// Gate-level Table 2 companion on the bit-parallel engine: worst-case
/// coverage of the generated structural self-checking adder (correlated
/// shared-unit stuck-ats on every gate of one instance) versus width.
fn gate_section(args: &CliArgs) {
    let threads = args.threads();
    println!("\nGate-level structural adder (bit-parallel engine, correlated faults):");
    println!(
        "{:>4} {:>9} {:>9} {:>9}",
        "bits", "Tech1", "Tech2", "Tech 1&2"
    );
    for bits in [1u32, 2, 3, 4, 8, 16] {
        let space = args.space(bits, 1 << 17);
        let mut cov = Vec::new();
        for tech in Technique::ALL {
            let report = Scenario::new(Operator::Add, bits)
                .technique(tech)
                .campaign()
                .backend(Backend::GateLevel)
                .input_space(space)
                .exec(ExecPolicy::new().threads(threads))
                .run()
                .expect("valid gate scenario");
            cov.push(report.coverage());
        }
        println!(
            "{bits:>4} {:>9} {:>9} {:>9}{}",
            pct(cov[0]),
            pct(cov[1]),
            pct(cov[2]),
            if matches!(space, InputSpace::Sampled { .. }) {
                "  (sampled)"
            } else {
                ""
            }
        );
    }
}

/// The §4.1 in-text statistics for the 2-bit adder.
fn detail(model: FaultModel) {
    let run = |tech: Technique| -> CampaignReport {
        Scenario::new(Operator::Add, 2)
            .technique(tech)
            .campaign()
            .fault_model(model)
            .run()
            .expect("valid detail scenario")
    };
    let both = run(Technique::Both);
    println!();
    println!("§4.1 statistics, 2-bit adder (paper values in parentheses):");
    println!(
        "  observable errors:        {:>5}   (216)",
        both.column(TechIndex::Tech1)
            .expect("functional fills all columns")
            .observable()
    );
    println!(
        "  detected though correct:  Tech1 {:>4} (352)  Tech2 {:>4} (384)  Both {:>4} (428)",
        both.column(TechIndex::Tech1)
            .expect("filled")
            .correct_detected,
        both.column(TechIndex::Tech2)
            .expect("filled")
            .correct_detected,
        both.column(TechIndex::Both)
            .expect("filled")
            .correct_detected,
    );
    for tech in Technique::ALL {
        let r = run(tech);
        let (lo, hi) = r.per_fault_coverage_range();
        println!(
            "  per-fault coverage range {}: [{}, {}]   (paper overall: [81.90%, 99.87%])",
            r.scenario.tech_index(),
            pct(lo),
            pct(hi)
        );
    }
}
