//! Incremental, resumable execution of sharded campaigns.
//!
//! [`CampaignRunner`] turns the all-or-nothing Fig. 3 sweep into a
//! checkpointed pipeline: the fault universe is partitioned by a
//! [`ShardPlan`], every shard runs as an ordinary campaign restricted
//! to its range, and each finished shard is written to the checkpoint
//! directory as a `scdp.campaign.report/v4` document
//! (`shard-NNN.json`). A later invocation over the same directory
//! *resumes*: checkpoints whose shard section matches the job's
//! configuration fingerprint are reused verbatim, only the missing (or
//! stale) shards execute, and once all shards exist they are merged
//! into a report bit-identical to the unsharded run.
//!
//! Datapath and sequential jobs elaborate their machine **once per
//! invocation** and grade every fresh shard on it (`run_on`); a
//! resume that reuses every checkpoint never pays for elaboration at
//! all. If the final merge rejects resumed checkpoints as
//! inconsistent (e.g. the universe changed under an unchanged
//! configuration), the runner discards them, re-runs those shards
//! fresh and merges again — stale checkpoints are re-run, never
//! trusted, and a sweep always converges.
//!
//! # Example
//!
//! ```
//! use scdp_campaign::{CampaignJob, CampaignRunner, Scenario};
//! use scdp_core::Operator;
//!
//! let job = CampaignJob::Operator(Scenario::new(Operator::Add, 3).campaign());
//! // In-memory sharded run (no checkpoint directory): run + merge.
//! let outcome = CampaignRunner::new(job.clone(), 4).run().expect("runs");
//! let merged = outcome.report.expect("all shards ran");
//! let full = job.run().expect("unsharded run");
//! assert!(merged.same_results(&full));
//! ```

use crate::datapath::DatapathCampaignSpec;
use crate::error::CampaignError;
use crate::report::CampaignReport;
use crate::seq::SeqDatapathCampaignSpec;
use crate::shard::ShardPlan;
use crate::spec::{CampaignSpec, ExecPolicy, MAX_WIDTH};
use scdp_netlist::gen::{ElaboratedDatapath, SeqDatapath};
use scdp_obs::{EventSink, ObsEvent};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One campaign of any backend shape, ready for sharded execution.
#[derive(Clone, Debug)]
pub enum CampaignJob {
    /// An operator scenario (functional or gate-level backend).
    Operator(CampaignSpec),
    /// An unrolled whole-datapath campaign.
    Datapath(DatapathCampaignSpec),
    /// A cycle-accurate sequential datapath campaign.
    Sequential(SeqDatapathCampaignSpec),
}

/// The per-invocation elaboration cache: datapath machines are
/// identical across shards, so the runner lowers them once.
enum Machine {
    Datapath(ElaboratedDatapath),
    Sequential(SeqDatapath),
}

impl CampaignJob {
    /// The job's configuration fingerprint — what its shard
    /// checkpoints carry as `plan_hash`, and what resume uses to
    /// decide whether an existing checkpoint belongs to this sweep.
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        match self {
            CampaignJob::Operator(spec) => spec.config_fingerprint(),
            CampaignJob::Datapath(spec) => spec.config_fingerprint(),
            CampaignJob::Sequential(spec) => spec.config_fingerprint(),
        }
    }

    /// Installs a structured event sink on the underlying spec: every
    /// run of this job (sharded or not) streams its
    /// [`scdp_obs::ObsEvent`]s there.
    #[must_use]
    pub fn events(self, sink: EventSink) -> Self {
        match self {
            CampaignJob::Operator(spec) => CampaignJob::Operator(spec.events(sink)),
            CampaignJob::Datapath(spec) => CampaignJob::Datapath(spec.events(sink)),
            CampaignJob::Sequential(spec) => CampaignJob::Sequential(spec.events(sink)),
        }
    }

    /// Asks every run of this job to collapse the fault universe into
    /// equivalence classes before simulation (results stay
    /// bit-identical; see [`CampaignSpec::collapse`]). Collapsing is
    /// excluded from the configuration fingerprint, so collapsed and
    /// uncollapsed invocations share checkpoints.
    ///
    /// Note the operator shape rejects this on the functional backend
    /// at run time ([`CampaignError::UnsupportedCollapse`]).
    #[must_use]
    pub fn collapse(self, enabled: bool) -> Self {
        self.update_exec(|exec| exec.collapse = enabled)
    }

    /// Asks every run of this job to embed a
    /// [`scdp_obs::TelemetrySnapshot`] in its report.
    #[must_use]
    pub fn telemetry(self, enabled: bool) -> Self {
        self.update_exec(|exec| exec.telemetry = enabled)
    }

    /// Replaces the underlying spec's execution policy wholesale.
    #[must_use]
    pub fn exec(self, exec: ExecPolicy) -> Self {
        self.update_exec(|e| *e = exec)
    }

    /// Applies `f` to the underlying spec's [`ExecPolicy`], whichever
    /// backend shape the job wraps.
    fn update_exec(mut self, f: impl FnOnce(&mut ExecPolicy)) -> Self {
        match &mut self {
            CampaignJob::Operator(spec) => f(&mut spec.exec),
            CampaignJob::Datapath(spec) => f(&mut spec.exec),
            CampaignJob::Sequential(spec) => f(&mut spec.exec),
        }
        self
    }

    /// Runs shard `index` of a `count`-way partition of this job.
    ///
    /// # Errors
    ///
    /// Propagates the underlying spec's [`CampaignError`]s.
    pub fn run_shard(&self, index: u32, count: u32) -> Result<CampaignReport, CampaignError> {
        self.run_shard_on(index, count, &mut None)
    }

    /// As [`CampaignJob::run_shard`], reusing (or filling) the
    /// caller's elaboration cache so consecutive shards of one
    /// invocation share a single synthesis/elaboration pass.
    fn run_shard_on(
        &self,
        index: u32,
        count: u32,
        machine: &mut Option<Machine>,
    ) -> Result<CampaignReport, CampaignError> {
        match self {
            CampaignJob::Operator(spec) => spec.clone().shard(index, count).run(),
            CampaignJob::Datapath(spec) => {
                check_width(spec.scenario.width)?;
                if machine.is_none() {
                    *machine = Some(Machine::Datapath(spec.scenario.elaborate()));
                }
                let Some(Machine::Datapath(dp)) = machine.as_ref() else {
                    unreachable!("cache filled with this job's machine kind");
                };
                spec.clone().shard(index, count).run_on(dp)
            }
            CampaignJob::Sequential(spec) => {
                check_width(spec.scenario.width)?;
                if machine.is_none() {
                    *machine = Some(Machine::Sequential(spec.scenario.elaborate_seq()));
                }
                let Some(Machine::Sequential(dp)) = machine.as_ref() else {
                    unreachable!("cache filled with this job's machine kind");
                };
                spec.clone().shard(index, count).run_on(dp)
            }
        }
    }

    /// Runs the whole job unsharded.
    ///
    /// # Errors
    ///
    /// Propagates the underlying spec's [`CampaignError`]s.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        match self {
            CampaignJob::Operator(spec) => spec.run(),
            CampaignJob::Datapath(spec) => spec.run(),
            CampaignJob::Sequential(spec) => spec.run(),
        }
    }
}

/// The datapath specs validate width before elaborating; the runner
/// must too, because it calls `elaborate*` (which `assert!`s) itself.
fn check_width(width: u32) -> Result<(), CampaignError> {
    if width == 0 || width > MAX_WIDTH {
        return Err(CampaignError::WidthOutOfRange {
            width,
            max: MAX_WIDTH,
        });
    }
    Ok(())
}

/// What the runner did about one shard.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardState {
    /// A matching checkpoint existed; its report was reused verbatim.
    Resumed,
    /// The shard was executed (and checkpointed) in this invocation.
    Ran,
    /// Skipped: the invocation's fresh-shard budget
    /// ([`CampaignRunner::max_shards`]) was exhausted first.
    Pending,
}

/// The result of one [`CampaignRunner::run`] invocation.
#[derive(Clone, Debug)]
pub struct RunnerOutcome {
    /// Per-shard states, plan order.
    pub shards: Vec<ShardState>,
    /// The merged report — present exactly when every shard completed
    /// (none left [`ShardState::Pending`]).
    pub report: Option<CampaignReport>,
}

impl RunnerOutcome {
    /// `true` when every shard completed and the merge ran.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.report.is_some()
    }

    /// Number of shards in each state: `(resumed, ran, pending)`.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize) {
        let count = |s: ShardState| self.shards.iter().filter(|&&x| x == s).count();
        (
            count(ShardState::Resumed),
            count(ShardState::Ran),
            count(ShardState::Pending),
        )
    }
}

/// A per-shard progress callback: `(index, count, state)`, called on
/// the driver thread as each shard resolves.
pub type ShardHook = Arc<dyn Fn(u32, u32, ShardState) + Send + Sync>;

/// Executes a [`CampaignJob`] shard by shard with optional checkpoint
/// persistence and resume.
#[derive(Clone)]
pub struct CampaignRunner {
    job: CampaignJob,
    shards: u32,
    dir: Option<PathBuf>,
    max_shards: Option<u32>,
    on_shard: Option<ShardHook>,
    events: Option<EventSink>,
}

impl CampaignRunner {
    /// A runner partitioning `job`'s fault universe into `shards`
    /// pieces. Without a checkpoint directory the run is in-memory
    /// (still sharded and merged — useful for bounding peak state and
    /// for testing partition determinism).
    #[must_use]
    pub fn new(job: CampaignJob, shards: u32) -> Self {
        Self {
            job,
            shards,
            dir: None,
            max_shards: None,
            on_shard: None,
            events: None,
        }
    }

    /// Persists every finished shard to `dir/shard-NNN.json` and
    /// resumes from matching checkpoints already there. Checkpoints
    /// that do not parse, cover a different shard geometry, or carry a
    /// different configuration fingerprint are re-run and overwritten.
    #[must_use]
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Caps how many *fresh* shards this invocation executes, leaving
    /// the rest [`ShardState::Pending`] — a deterministic interrupt
    /// for tests and CI; a later invocation resumes the remainder.
    #[must_use]
    pub fn max_shards(mut self, max_shards: u32) -> Self {
        self.max_shards = Some(max_shards);
        self
    }

    /// Installs a per-shard progress callback.
    #[must_use]
    pub fn on_shard(mut self, hook: ShardHook) -> Self {
        self.on_shard = Some(hook);
        self
    }

    /// Streams [`scdp_obs::ObsEvent`]s to `sink`: the runner emits
    /// `ShardStarted`/`ShardFinished` around every shard, and the sink
    /// is forwarded to the underlying spec so each shard's own
    /// lifecycle and span events appear in the same stream.
    #[must_use]
    pub fn events(mut self, sink: EventSink) -> Self {
        self.job = self.job.events(sink.clone());
        self.events = Some(sink);
        self
    }

    /// Asks every shard run (and thus the merged report) to carry a
    /// telemetry section. The merged section aggregates the shards'
    /// — count-typed counters then equal an unsharded run's.
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.job = self.job.telemetry(enabled);
        self
    }

    /// The checkpoint path of shard `index` under `dir`.
    #[must_use]
    pub fn shard_path(dir: &Path, index: u32) -> PathBuf {
        dir.join(format!("shard-{index:03}.json"))
    }

    /// Runs (or resumes) the sharded campaign: reuse matching
    /// checkpoints, execute missing shards up to the fresh-shard
    /// budget, then merge if complete. A merge that rejects resumed
    /// checkpoints triggers one self-heal pass: those shards re-run
    /// fresh and the merge retries.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::ZeroShards`] for an empty plan, the
    /// underlying spec's validation errors, [`CampaignError::Io`] when
    /// a checkpoint cannot be written, and
    /// [`CampaignError::ShardMerge`] if even freshly-run shards cannot
    /// be merged.
    pub fn run(&self) -> Result<RunnerOutcome, CampaignError> {
        if self.shards == 0 {
            return Err(CampaignError::ZeroShards);
        }
        let fingerprint = self.job.config_fingerprint();
        let mut machine: Option<Machine> = None;
        let mut states = Vec::with_capacity(self.shards as usize);
        let mut reports: Vec<Option<CampaignReport>> = vec![None; self.shards as usize];
        let mut fresh = 0u32;
        for index in 0..self.shards {
            if let Some(report) = self.load_checkpoint(index, fingerprint) {
                self.shard_finished(index, "resumed", Some(&report), 0);
                reports[index as usize] = Some(report);
                self.notify(index, ShardState::Resumed);
                states.push(ShardState::Resumed);
                continue;
            }
            if self.max_shards.is_some_and(|max| fresh >= max) {
                self.shard_finished(index, "pending", None, 0);
                self.notify(index, ShardState::Pending);
                states.push(ShardState::Pending);
                continue;
            }
            reports[index as usize] = Some(self.run_fresh(index, &mut machine)?);
            fresh += 1;
            self.notify(index, ShardState::Ran);
            states.push(ShardState::Ran);
        }
        if reports.iter().any(Option::is_none) {
            return Ok(RunnerOutcome {
                shards: states,
                report: None,
            });
        }
        let complete: Vec<CampaignReport> = reports.iter().flatten().cloned().collect();
        let report = match CampaignReport::merge(&complete) {
            Ok(report) => report,
            Err(err) if states.contains(&ShardState::Resumed) => {
                // Self-heal: a resumed checkpoint passed the
                // fingerprint gate but is inconsistent with the fresh
                // shards (e.g. the universe drifted under an unchanged
                // configuration). Never trust it — re-run every
                // resumed shard and merge again.
                let _ = err;
                for index in 0..self.shards {
                    if states[index as usize] == ShardState::Resumed {
                        reports[index as usize] = Some(self.run_fresh(index, &mut machine)?);
                        states[index as usize] = ShardState::Ran;
                        self.notify(index, ShardState::Ran);
                    }
                }
                let complete: Vec<CampaignReport> = reports.into_iter().flatten().collect();
                CampaignReport::merge(&complete)?
            }
            Err(err) => return Err(err),
        };
        Ok(RunnerOutcome {
            shards: states,
            report: Some(report),
        })
    }

    /// Executes shard `index` fresh and checkpoints it.
    fn run_fresh(
        &self,
        index: u32,
        machine: &mut Option<Machine>,
    ) -> Result<CampaignReport, CampaignError> {
        self.emit(&ObsEvent::ShardStarted {
            shard: index,
            of: self.shards,
            // The universe size is unknown until the shard has run.
            faults: 0,
        });
        let report = self.job.run_shard_on(index, self.shards, machine)?;
        self.shard_finished(index, "ran", Some(&report), report.elapsed_ms);
        if let Some(dir) = &self.dir {
            let io_err = |e: std::io::Error, path: &Path| CampaignError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            };
            std::fs::create_dir_all(dir).map_err(|e| io_err(e, dir))?;
            let path = Self::shard_path(dir, index);
            std::fs::write(&path, report.to_json()).map_err(|e| io_err(e, &path))?;
        }
        Ok(report)
    }

    /// Loads shard `index`'s checkpoint if it exists and belongs to
    /// this job's sweep; anything else (unreadable, unparseable, wrong
    /// geometry, a range that is not what the plan assigns, wrong
    /// fingerprint) means "not resumable".
    fn load_checkpoint(&self, index: u32, fingerprint: u64) -> Option<CampaignReport> {
        let dir = self.dir.as_ref()?;
        let text = std::fs::read_to_string(Self::shard_path(dir, index)).ok()?;
        let report = CampaignReport::from_json(&text).ok()?;
        let shard = report.shard?;
        let expected = ShardPlan::new(shard.total_faults, self.shards)
            .ok()?
            .range(index);
        let matches = shard.index == index
            && shard.count == self.shards
            && shard.fault_start == expected.start
            && shard.fault_end == expected.end
            && shard.plan_hash == fingerprint;
        matches.then_some(report)
    }

    fn notify(&self, index: u32, state: ShardState) {
        if let Some(hook) = &self.on_shard {
            hook(index, self.shards, state);
        }
    }

    fn emit(&self, event: &ObsEvent) {
        if let Some(sink) = &self.events {
            sink(event);
        }
    }

    /// Emits `ShardFinished` with the shard's outcome counts
    /// (`resumed` shards report `elapsed_ms: 0` — resumption is free;
    /// `pending` shards report zeros across the board).
    fn shard_finished(
        &self,
        index: u32,
        state: &str,
        report: Option<&CampaignReport>,
        elapsed_ms: u64,
    ) {
        if self.events.is_none() {
            return;
        }
        let detected = report.map_or(0, |r| {
            r.per_fault.iter().filter(|f| f.detected).count() as u64
        });
        let dropped = report.map_or(0, |r| {
            r.per_fault
                .iter()
                .filter(|f| f.dropped_after.is_some())
                .count() as u64
        });
        self.emit(&ObsEvent::ShardFinished {
            shard: index,
            of: self.shards,
            state: state.to_string(),
            faults: report.map_or(0, CampaignReport::fault_count),
            detected,
            dropped,
            simulated: report.map_or(0, |r| r.simulated),
            elapsed_ms,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use scdp_core::Operator;

    fn job() -> CampaignJob {
        CampaignJob::Operator(
            Scenario::new(Operator::Add, 2)
                .campaign()
                .exec(ExecPolicy::new().threads(2)),
        )
    }

    #[test]
    fn in_memory_sharded_run_matches_unsharded() {
        let outcome = CampaignRunner::new(job(), 3).run().expect("runs");
        assert!(outcome.completed());
        assert_eq!(outcome.counts(), (0, 3, 0));
        let merged = outcome.report.expect("complete");
        let full = job().run().expect("unsharded");
        assert!(merged.same_results(&full));
        assert!(merged.shard.is_none(), "merged reports are not partial");
    }

    #[test]
    fn event_stream_and_telemetry_cover_every_shard() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<ObsEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let probe = Arc::clone(&seen);
        let outcome = CampaignRunner::new(job(), 3)
            .telemetry(true)
            .events(Arc::new(move |e: &ObsEvent| {
                probe.lock().unwrap().push(e.clone());
            }))
            .run()
            .expect("runs");
        let merged = outcome.report.expect("complete");
        let seen = seen.lock().unwrap();

        let finished: Vec<(u32, String, u64)> = seen
            .iter()
            .filter_map(|e| match e {
                ObsEvent::ShardFinished {
                    shard,
                    state,
                    faults,
                    ..
                } => Some((*shard, state.clone(), *faults)),
                _ => None,
            })
            .collect();
        assert_eq!(finished.len(), 3, "one finish per shard");
        assert!(finished.iter().all(|(_, s, _)| s == "ran"));
        let traced: u64 = finished.iter().map(|(_, _, f)| f).sum();
        assert_eq!(
            traced,
            merged.fault_count(),
            "per-shard trace fault counts sum to the merged universe"
        );
        assert!(
            seen.iter().any(|e| e.kind() == "shard_started"),
            "fresh shards announce themselves"
        );
        assert!(
            seen.iter().any(|e| e.kind() == "span"),
            "shard campaigns stream their spans through the same sink"
        );

        // The merged telemetry's count-typed counters equal an
        // unsharded run's — sharding only splits the work.
        let tel = merged.telemetry.expect("merged telemetry");
        let full = job().telemetry(true).run().expect("unsharded");
        let full_tel = full.telemetry.expect("unsharded telemetry");
        assert_eq!(
            tel.deterministic_counters(),
            full_tel.deterministic_counters()
        );
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        assert!(matches!(
            CampaignRunner::new(job(), 0).run(),
            Err(CampaignError::ZeroShards)
        ));
    }

    #[test]
    fn max_shards_interrupts_and_reports_pending() {
        let outcome = CampaignRunner::new(job(), 4)
            .max_shards(2)
            .run()
            .expect("runs");
        assert!(!outcome.completed());
        assert_eq!(outcome.counts(), (0, 2, 2));
        assert_eq!(
            outcome.shards,
            vec![
                ShardState::Ran,
                ShardState::Ran,
                ShardState::Pending,
                ShardState::Pending
            ]
        );
    }

    #[test]
    fn job_fingerprint_matches_the_shard_reports() {
        let report = job().run_shard(1, 3).expect("shard runs");
        let shard = report.shard.expect("shard section");
        assert_eq!(shard.plan_hash, job().config_fingerprint());
        assert_eq!((shard.index, shard.count), (1, 3));
    }

    #[test]
    fn datapath_jobs_validate_width_before_elaborating() {
        let job = CampaignJob::Datapath(
            crate::datapath::DatapathScenario::new(crate::datapath::DfgSource::Dot, 0).campaign(),
        );
        assert!(matches!(
            CampaignRunner::new(job, 2).run(),
            Err(CampaignError::WidthOutOfRange { width: 0, .. })
        ));
    }
}
