//! Typed campaign errors.
//!
//! The engine-room constructors (`scdp_coverage::CampaignBuilder::over`,
//! `scdp_sim::EngineCampaign::over`) validate with `assert!`; the
//! unified [`CampaignSpec::run`](crate::CampaignSpec::run) performs the
//! same checks *before* dispatching and reports failures as values
//! instead of panics. Sharded campaigns add their own failure surface —
//! invalid shard plans, inconsistent partial reports, unreadable
//! checkpoint files — all typed here too.

use crate::scenario::{Backend, FaultModel};
use scdp_core::Operator;
use scdp_netlist::gen::AdderRealisation;
use std::error::Error;
use std::fmt;

/// Why a campaign could not be configured, run or deserialised.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignError {
    /// The operand width lies outside the supported `1..=max` range.
    WidthOutOfRange {
        /// The rejected width.
        width: u32,
        /// The inclusive upper bound.
        max: u32,
    },
    /// A worker-thread count of zero was requested.
    ZeroThreads,
    /// The operator is not available on the selected backend (division
    /// checking has no gate-level realisation).
    UnsupportedOperator {
        /// The rejected operator.
        op: Operator,
        /// The backend that cannot analyse it.
        backend: Backend,
    },
    /// The fault model is not available on the selected backend or
    /// circuit realisation.
    UnsupportedFaultModel {
        /// The rejected model.
        model: FaultModel,
        /// The backend it was requested on.
        backend: Backend,
        /// Human-readable explanation.
        detail: &'static str,
    },
    /// Fault dropping is only meaningful on the gate-level engine; the
    /// functional classifier needs every situation tallied.
    UnsupportedDropPolicy {
        /// The backend that cannot drop faults.
        backend: Backend,
    },
    /// Fault-equivalence collapsing needs a gate-level netlist to
    /// analyse; the functional classifier has none.
    UnsupportedCollapse {
        /// The backend that cannot collapse.
        backend: Backend,
    },
    /// Deductive pruning needs a gate-level netlist to analyse; the
    /// functional classifier has none.
    UnsupportedPrune {
        /// The backend that cannot prune.
        backend: Backend,
    },
    /// The structural realisation only applies to `+` datapaths.
    UnsupportedRealisation {
        /// The rejected realisation.
        realisation: AdderRealisation,
        /// The operator it was requested for.
        op: Operator,
    },
    /// Exhaustive enumeration of the input space would overflow the
    /// vector counter; use a sampled space instead.
    ExhaustiveSpaceTooLarge {
        /// The rejected operand width.
        width: u32,
    },
    /// Exhaustive enumeration over an elaborated datapath's primary
    /// inputs would be intractable; use a sampled input space.
    ExhaustiveDatapathTooLarge {
        /// Primary input bits of the elaborated netlist.
        input_bits: usize,
    },
    /// A transient fault was requested for a cycle the sequential
    /// datapath never executes.
    TransientCycleOutOfRange {
        /// The rejected injection cycle.
        cycle: u32,
        /// Cycles the elaborated datapath runs (valid cycles are
        /// `0..total_cycles`).
        total_cycles: u32,
    },
    /// A fault spec was rejected by the simulation engines' validation
    /// (e.g. a pin the gate does not have) — surfaced as a value so one
    /// malformed group cannot abort a sharded sweep mid-campaign.
    FaultSpec {
        /// The engine's [`scdp_sim::SimError`] rendering.
        message: String,
    },
    /// A shard plan must partition the universe into at least one
    /// shard.
    ZeroShards,
    /// A shard index at or beyond the plan's shard count.
    ShardIndexOutOfRange {
        /// The rejected shard index.
        index: u32,
        /// The plan's shard count (valid indices are `0..count`).
        count: u32,
    },
    /// Partial shard reports could not be merged back into one
    /// campaign report.
    ShardMerge {
        /// What is inconsistent.
        message: String,
    },
    /// A checkpoint file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The OS error rendering.
        message: String,
    },
    /// A report could not be parsed as JSON.
    Parse {
        /// Byte offset of the first offending character.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON parsed but does not match the report schema.
    Schema {
        /// The offending field (dotted path).
        field: &'static str,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::WidthOutOfRange { width, max } => {
                write!(f, "operand width {width} out of range 1..={max}")
            }
            CampaignError::ZeroThreads => f.write_str("worker thread count must be positive"),
            CampaignError::UnsupportedOperator { op, backend } => {
                write!(
                    f,
                    "operator `{op}` is not supported on the {backend} backend"
                )
            }
            CampaignError::UnsupportedFaultModel {
                model,
                backend,
                detail,
            } => {
                write!(
                    f,
                    "fault model {model} is not supported on the {backend} backend: {detail}"
                )
            }
            CampaignError::UnsupportedDropPolicy { backend } => {
                write!(
                    f,
                    "fault dropping is not supported on the {backend} backend \
                     (coverage classification needs every situation tallied)"
                )
            }
            CampaignError::UnsupportedCollapse { backend } => {
                write!(
                    f,
                    "fault collapsing is not supported on the {backend} backend \
                     (no gate-level netlist to analyse)"
                )
            }
            CampaignError::UnsupportedPrune { backend } => {
                write!(
                    f,
                    "deductive pruning is not supported on the {backend} backend \
                     (no gate-level netlist to analyse)"
                )
            }
            CampaignError::UnsupportedRealisation { realisation, op } => {
                write!(
                    f,
                    "adder realisation {realisation} only applies to `+` datapaths, not `{op}`"
                )
            }
            CampaignError::ExhaustiveSpaceTooLarge { width } => {
                write!(
                    f,
                    "exhaustive input space at width {width} overflows the vector counter; \
                     use a sampled space"
                )
            }
            CampaignError::ExhaustiveDatapathTooLarge { input_bits } => {
                write!(
                    f,
                    "exhaustive enumeration over {input_bits} datapath input bits is \
                     intractable; use a sampled input space"
                )
            }
            CampaignError::TransientCycleOutOfRange {
                cycle,
                total_cycles,
            } => {
                write!(
                    f,
                    "transient fault cycle {cycle} out of range: the sequential datapath \
                     runs {total_cycles} cycles (0..{total_cycles})"
                )
            }
            CampaignError::FaultSpec { message } => {
                write!(f, "malformed fault spec: {message}")
            }
            CampaignError::ZeroShards => f.write_str("shard plans need at least one shard"),
            CampaignError::ShardIndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range 0..{count}")
            }
            CampaignError::ShardMerge { message } => {
                write!(f, "cannot merge shard reports: {message}")
            }
            CampaignError::Io { path, message } => {
                write!(f, "checkpoint I/O error at `{path}`: {message}")
            }
            CampaignError::Parse { offset, message } => {
                write!(f, "report JSON parse error at byte {offset}: {message}")
            }
            CampaignError::Schema { field, message } => {
                write!(f, "report JSON schema error at `{field}`: {message}")
            }
        }
    }
}

impl Error for CampaignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_are_std_errors() {
        let e = CampaignError::WidthOutOfRange { width: 99, max: 32 };
        assert!(e.to_string().contains("99"));
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.to_string().contains("out of range"));
        assert!(CampaignError::ZeroThreads.to_string().contains("positive"));
        let e = CampaignError::UnsupportedDropPolicy {
            backend: Backend::Functional,
        };
        assert!(e.to_string().contains("functional"));
    }
}
