//! Gate-level cross-validation (E7): the paper claims its coverage
//! analysis is "independent of the actual implementation … with a carry
//! look-ahead implementation of an adder, as well as with a ripple
//! carry". This binary runs structural stuck-at campaigns on generated
//! self-checking add datapaths built from **ripple-carry**,
//! **carry-lookahead** and **carry-save** adder realisations in one
//! campaign and compares their coverage, plus the array-multiplier
//! worst case.
//!
//! Faults are injected per instance-local site and *correlated* across
//! the nominal and checking instances (same physical unit reused), the
//! worst case of §4. All campaigns run through the gate-level backend
//! of the unified `scdp-campaign` API (bit-parallel engine: 64 packed
//! vectors per evaluation, good machine shared per batch, fault
//! universe spread across threads); the scalar `Netlist::eval_nets`
//! path survives as the differential-testing oracle (`--oracle`
//! re-checks one technique against it). `--report FILE` writes the
//! RCA/Both report as `scdp.campaign.report/v1` JSON.
//!
//! Usage:
//!   gate_xval [--width N] [--samples N] [--seed S] [--threads N]
//!             [--oracle] [--report FILE]
//!
//! Widths whose input space exceeds 2^20 vectors (width > 10) switch to
//! seeded Monte-Carlo sampling automatically — `--width 16`, infeasible
//! on the scalar path, completes in seconds this way.

use scdp_bench::{pct, scalar_add_oracle, timed, CliArgs};
use scdp_campaign::{Backend, CampaignReport, ExecPolicy, InputSpace, Scenario};
use scdp_core::{Operator, Technique};
use scdp_netlist::gen::AdderRealisation;

fn main() {
    let args = CliArgs::parse();
    let width = args.width(4);
    let threads = args.threads();
    let space = args.space(width, 1 << 16);

    match space {
        InputSpace::Exhaustive => println!(
            "Gate-level cross-validation, width {width} (correlated shared-unit faults, \
             exhaustive inputs, {threads} threads)\n"
        ),
        InputSpace::Sampled { per_fault, seed } => println!(
            "Gate-level cross-validation, width {width} (correlated shared-unit faults, \
             {per_fault} sampled inputs, seed {seed:#x}, {threads} threads)\n"
        ),
    }

    let run = |op: Operator, tech: Technique, real: AdderRealisation| -> CampaignReport {
        Scenario::new(op, width)
            .technique(tech)
            .realisation(real)
            .campaign()
            .backend(Backend::GateLevel)
            .input_space(space)
            .exec(ExecPolicy::new().threads(threads))
            .run()
            .expect("valid cross-validation scenario")
    };

    for tech in Technique::ALL {
        let mut row = format!("{tech:<9}");
        for real in AdderRealisation::ALL {
            let r = timed(&format!("{} {tech}", real.label()), || {
                run(Operator::Add, tech, real)
            });
            row.push_str(&format!(
                "  {} coverage {}  ({} sites)",
                real.label(),
                pct(r.coverage()),
                r.fault_count() / 2,
            ));
            if tech == Technique::Both && real == AdderRealisation::RippleCarry {
                if let Some(path) = args.value::<String>("--report") {
                    std::fs::write(&path, r.to_json()).expect("write report JSON");
                    eprintln!("[wrote {path}]");
                }
            }
        }
        println!("{row}");
    }
    println!("\nAll three realisations sit in the same coverage band — the functional-level");
    println!("analysis of Table 2 transfers across adder implementations.");

    println!("\nGate-level multiplier worst case (correlated shared-unit stuck-ats):");
    for tech in Technique::ALL {
        let r = timed(&format!("mul {tech}"), || {
            run(Operator::Mul, tech, AdderRealisation::RippleCarry)
        });
        println!(
            "{tech:<9}  x coverage {}  ({} sites)   (paper Table 1, 8-bit: 96.22 / 96.38 / 97.43%)",
            pct(r.coverage()),
            r.fault_count() / 2,
        );
    }
    println!("Gate-level multiplier faults mask substantially more than truth-table");
    println!("cell faults (cf. table1), closing most of the Table 1 x-row gap.");

    if args.flag("--oracle") {
        let w = width.min(4);
        let report = Scenario::new(Operator::Add, w)
            .technique(Technique::Both)
            .campaign()
            .backend(Backend::GateLevel)
            .exec(ExecPolicy::new().threads(threads))
            .run()
            .expect("valid oracle scenario");
        let dp = scdp_netlist::gen::self_checking_add_with(
            w,
            Technique::Both,
            AdderRealisation::RippleCarry,
        );
        let scalar_cov = timed("scalar oracle", || scalar_add_oracle(&dp, w));
        println!(
            "\nOracle check (width {w}, Both): engine {} vs scalar {} — {}",
            pct(report.coverage()),
            pct(scalar_cov),
            if (report.coverage() - scalar_cov).abs() < 1e-12 {
                "MATCH"
            } else {
                "MISMATCH"
            }
        );
    }
}
