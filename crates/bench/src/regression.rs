//! The bench-regression gate: comparing fresh `BENCH_*.json` artifacts
//! against the committed baselines.
//!
//! Every benchmark group writes a `BENCH_<name>.json` through
//! [`Bench::finish`](crate::Bench::finish); the workspace commits those
//! artifacts as the performance trajectory. This module is the `--check`
//! mode behind the `bench_check` binary (the CI bench-regression job):
//! it reloads both sides and fails on
//!
//! * a **median slowdown** beyond the tolerance (default ±30%),
//! * a **derived-metric decay** beyond the tolerance,
//! * a **hard floor** violation — `speedup_1thread_vs_scalar` below
//!   100× is a failure regardless of tolerance (the engine's headline
//!   acceptance),
//! * baseline ids or files missing from the fresh run.
//!
//! Improvements beyond the tolerance are reported as warnings (the
//! baseline is stale and should be regenerated), never failures.

use scdp_campaign::json::{self, Json};

/// One timed record of a bench file (`results` array entry).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id within the group.
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
}

/// One derived scalar metric (`metrics` array entry).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchMetric {
    /// Metric id.
    pub id: String,
    /// Metric value (e.g. a speedup ratio).
    pub value: f64,
}

/// A parsed `BENCH_<name>.json` artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    /// Group name (the `bench` member).
    pub name: String,
    /// Timed records.
    pub records: Vec<BenchRecord>,
    /// Derived metrics.
    pub metrics: Vec<BenchMetric>,
}

impl BenchFile {
    /// Parses a bench artifact.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed documents.
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let name = v
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("missing `bench` name")?
            .to_string();
        let mut records = Vec::new();
        for r in v.get("results").and_then(Json::as_arr).unwrap_or(&[]) {
            records.push(BenchRecord {
                id: r
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("result without id")?
                    .to_string(),
                median_ns: r
                    .get("median_ns")
                    .and_then(Json::as_f64)
                    .ok_or("result without median_ns")?,
            });
        }
        let mut metrics = Vec::new();
        for m in v.get("metrics").and_then(Json::as_arr).unwrap_or(&[]) {
            metrics.push(BenchMetric {
                id: m
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("metric without id")?
                    .to_string(),
                value: m
                    .get("value")
                    .and_then(Json::as_f64)
                    .ok_or("metric without value")?,
            });
        }
        Ok(BenchFile {
            name,
            records,
            metrics,
        })
    }

    /// Loads and parses a bench artifact from disk.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for IO or parse failures.
    pub fn load(path: &std::path::Path) -> Result<BenchFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchFile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    fn median_of(&self, id: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
    }

    fn metric_of(&self, id: &str) -> Option<f64> {
        self.metrics.iter().find(|m| m.id == id).map(|m| m.value)
    }
}

/// Severity of one check finding.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The gate fails.
    Fail,
    /// Noted, but not a failure (e.g. a stale baseline after a big
    /// improvement).
    Warn,
}

/// One comparison finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Whether the finding fails the gate.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn fail(message: String) -> Finding {
        Finding {
            severity: Severity::Fail,
            message,
        }
    }

    fn warn(message: String) -> Finding {
        Finding {
            severity: Severity::Warn,
            message,
        }
    }
}

/// Configuration of the regression gate.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Relative tolerance on medians and metrics (0.30 = ±30%).
    pub tolerance: f64,
    /// Whether absolute-median slowdowns fail the gate. `true` when
    /// fresh run and baseline come from the same machine (the local
    /// workflow); set `false` (`bench_check --cross-machine`) when the
    /// baseline was recorded elsewhere — absolute nanoseconds do not
    /// transfer between machines, so median findings demote to
    /// warnings while the machine-relative ratio metrics
    /// (`speedup_*`) and the hard floors keep failing.
    pub medians_fail: bool,
    /// Hard floors on derived metrics, checked on the *fresh* file
    /// regardless of tolerance.
    pub metric_floors: Vec<(String, f64)>,
}

impl Default for CheckConfig {
    /// The committed gate: ±30% tolerance, combinational engine speedup
    /// ≥ 100×, sequential engine speedup ≥ 8×, fault-collapsed campaign
    /// wall-clock win ≥ 1.3×, deductive prune ratio ≥ 1.15× (universe ÷
    /// still-simulated groups), and the execution-layer shape floors —
    /// benches must exercise the work-stealing pool with ≥ 4 workers
    /// and the wide-word engine with ≥ 4 SIMD lanes (64-bit limbs).
    /// The pool's *scaling ratio* floor (`parallel_speedup_w8` ≥ 3×)
    /// is machine-conditional and added by `bench_check` only on
    /// runners with ≥ 4 physical cores.
    fn default() -> Self {
        Self {
            tolerance: 0.30,
            medians_fail: true,
            metric_floors: vec![
                ("speedup_1thread_vs_scalar".to_string(), 100.0),
                ("seq_speedup_1thread_vs_scalar".to_string(), 8.0),
                ("collapse_ratio".to_string(), 1.3),
                ("prune_ratio".to_string(), 1.15),
                ("parallel_threads".to_string(), 4.0),
                ("simd_lanes".to_string(), 4.0),
            ],
        }
    }
}

/// `true` for metrics carrying machine-absolute throughput or
/// utilisation (e.g. `seq_mcycles_per_sec`, `faults_per_sec`,
/// `parallel_busy_fraction`): like raw medians, they do not transfer
/// between machines (core count changes both rates and utilisation),
/// so their decay findings follow the `medians_fail` rule instead of
/// always failing. Speedup *ratios* stay strict.
fn absolute_metric(id: &str) -> bool {
    id.ends_with("_per_sec") || id.ends_with("_busy_fraction")
}

/// Compares one fresh bench file against its committed baseline.
#[must_use]
pub fn check(baseline: &BenchFile, fresh: &BenchFile, cfg: &CheckConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let group = &baseline.name;
    for rec in &baseline.records {
        match fresh.median_of(&rec.id) {
            None => findings.push(Finding::fail(format!(
                "{group}/{}: present in baseline, missing from fresh run",
                rec.id
            ))),
            Some(fresh_ns) => {
                let ratio = fresh_ns / rec.median_ns;
                if ratio > 1.0 + cfg.tolerance {
                    let message = format!(
                        "{group}/{}: median slowdown {:.2}x over baseline \
                         ({:.0} ns -> {:.0} ns, tolerance +{:.0}%)",
                        rec.id,
                        ratio,
                        rec.median_ns,
                        fresh_ns,
                        cfg.tolerance * 100.0
                    );
                    findings.push(if cfg.medians_fail {
                        Finding::fail(message)
                    } else {
                        Finding::warn(message)
                    });
                } else if ratio < 1.0 - cfg.tolerance {
                    findings.push(Finding::warn(format!(
                        "{group}/{}: {:.2}x faster than baseline — regenerate the \
                         committed BENCH artifact",
                        rec.id,
                        1.0 / ratio
                    )));
                }
            }
        }
    }
    for rec in &fresh.records {
        if baseline.median_of(&rec.id).is_none() {
            findings.push(Finding::warn(format!(
                "{group}/{}: new id not in the committed baseline",
                rec.id
            )));
        }
    }
    for m in &baseline.metrics {
        match fresh.metric_of(&m.id) {
            None => findings.push(Finding::fail(format!(
                "{group}/{}: metric present in baseline, missing from fresh run",
                m.id
            ))),
            Some(fresh_v) if m.value > 0.0 => {
                let ratio = fresh_v / m.value;
                if ratio < 1.0 - cfg.tolerance {
                    let message = format!(
                        "{group}/{}: metric decayed {:.2} -> {:.2} \
                         (tolerance -{:.0}%)",
                        m.id,
                        m.value,
                        fresh_v,
                        cfg.tolerance * 100.0
                    );
                    findings.push(if cfg.medians_fail || !absolute_metric(&m.id) {
                        Finding::fail(message)
                    } else {
                        Finding::warn(message)
                    });
                } else if ratio > 1.0 + cfg.tolerance {
                    findings.push(Finding::warn(format!(
                        "{group}/{}: metric improved {:.2} -> {:.2} — regenerate \
                         the committed BENCH artifact",
                        m.id, m.value, fresh_v
                    )));
                }
            }
            Some(_) => {}
        }
    }
    for (id, floor) in &cfg.metric_floors {
        if let Some(v) = fresh.metric_of(id) {
            if v < *floor {
                findings.push(Finding::fail(format!(
                    "{group}/{id}: {v:.1} below the hard floor {floor:.1}"
                )));
            }
        }
    }
    findings
}

/// Compares every `BENCH_*.json` of `baseline_dir` against its
/// counterpart in `fresh_dir`. Returns the findings and the number of
/// file pairs compared.
///
/// # Errors
///
/// Returns a message when a directory cannot be read or a baseline
/// artifact is malformed (a malformed *fresh* file is a gate failure,
/// not an error).
pub fn check_dirs(
    baseline_dir: &std::path::Path,
    fresh_dir: &std::path::Path,
    cfg: &CheckConfig,
) -> Result<(Vec<Finding>, usize), String> {
    let mut findings = Vec::new();
    let mut compared = 0usize;
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("{}: {e}", baseline_dir.display()))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }
    for name in names {
        let baseline = BenchFile::load(&baseline_dir.join(&name))?;
        let fresh_path = fresh_dir.join(&name);
        if !fresh_path.exists() {
            findings.push(Finding::fail(format!(
                "{name}: baseline has no fresh counterpart in {}",
                fresh_dir.display()
            )));
            continue;
        }
        match BenchFile::load(&fresh_path) {
            Ok(fresh) => {
                findings.extend(check(&baseline, &fresh, cfg));
                compared += 1;
            }
            Err(e) => findings.push(Finding::fail(format!("fresh artifact malformed: {e}"))),
        }
    }
    Ok((findings, compared))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(records: &[(&str, f64)], metrics: &[(&str, f64)]) -> BenchFile {
        BenchFile {
            name: "sim_engine".into(),
            records: records
                .iter()
                .map(|&(id, median_ns)| BenchRecord {
                    id: id.into(),
                    median_ns,
                })
                .collect(),
            metrics: metrics
                .iter()
                .map(|&(id, value)| BenchMetric {
                    id: id.into(),
                    value,
                })
                .collect(),
        }
    }

    fn fails(findings: &[Finding]) -> usize {
        findings
            .iter()
            .filter(|f| f.severity == Severity::Fail)
            .count()
    }

    #[test]
    fn parses_the_harness_format() {
        let text = "{\"bench\":\"sim_engine\",\"results\":[{\"id\":\"a\",\"median_ns\":120.5,\
                    \"min_ns\":100.0,\"samples\":10,\"elements\":64}],\
                    \"metrics\":[{\"id\":\"speedup\",\"value\":153.070}]}\n";
        let f = BenchFile::parse(text).expect("parses");
        assert_eq!(f.name, "sim_engine");
        assert_eq!(f.records.len(), 1);
        assert_eq!(f.median_of("a"), Some(120.5));
        assert_eq!(f.metric_of("speedup"), Some(153.07));
        assert!(BenchFile::parse("{}").is_err());
        assert!(BenchFile::parse("not json").is_err());
    }

    #[test]
    fn identical_runs_pass() {
        let base = file(&[("a", 100.0)], &[("speedup_1thread_vs_scalar", 150.0)]);
        let findings = check(&base, &base, &CheckConfig::default());
        assert_eq!(fails(&findings), 0, "{findings:?}");
    }

    #[test]
    fn injected_2x_slowdown_fails_the_gate() {
        let base = file(
            &[("bitparallel_1thread_w4", 285_816.0)],
            &[("speedup_1thread_vs_scalar", 153.0)],
        );
        // The acceptance scenario: the fresh run is 2x slower and the
        // headline speedup halves below the 100x floor.
        let fresh = file(
            &[("bitparallel_1thread_w4", 571_632.0)],
            &[("speedup_1thread_vs_scalar", 76.5)],
        );
        let findings = check(&base, &fresh, &CheckConfig::default());
        assert!(fails(&findings) >= 3, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("slowdown")));
        assert!(findings.iter().any(|f| f.message.contains("hard floor")));
        // Within tolerance passes: 1.25x is inside +-30%.
        let ok = file(
            &[("bitparallel_1thread_w4", 357_270.0)],
            &[("speedup_1thread_vs_scalar", 122.4)],
        );
        assert_eq!(fails(&check(&base, &ok, &CheckConfig::default())), 0);
    }

    #[test]
    fn improvements_warn_but_do_not_fail() {
        let base = file(&[("a", 100.0)], &[("speedup_1thread_vs_scalar", 150.0)]);
        let fresh = file(&[("a", 40.0)], &[("speedup_1thread_vs_scalar", 400.0)]);
        let findings = check(&base, &fresh, &CheckConfig::default());
        assert_eq!(fails(&findings), 0, "{findings:?}");
        assert_eq!(findings.len(), 2, "both improvements warned");
    }

    #[test]
    fn missing_ids_fail_and_new_ids_warn() {
        let base = file(&[("a", 100.0), ("gone", 50.0)], &[]);
        let fresh = file(&[("a", 100.0), ("new", 10.0)], &[]);
        let findings = check(&base, &fresh, &CheckConfig::default());
        assert_eq!(fails(&findings), 1);
        assert!(findings
            .iter()
            .any(|f| f.severity == Severity::Warn && f.message.contains("new")));
    }

    #[test]
    fn absolute_throughput_metrics_follow_the_median_rule() {
        // A slower CI machine halves the absolute Mcycles/s metric: a
        // warning in cross-machine mode, a failure in same-machine
        // mode. The machine-relative seq speedup ratio stays strict in
        // both, as does its hard floor.
        let base = file(
            &[],
            &[
                ("seq_mcycles_per_sec", 30.0),
                ("seq_speedup_1thread_vs_scalar", 100.0),
            ],
        );
        let slow_machine = file(
            &[],
            &[
                ("seq_mcycles_per_sec", 15.0),
                ("seq_speedup_1thread_vs_scalar", 98.0),
            ],
        );
        let cross = CheckConfig {
            medians_fail: false,
            ..CheckConfig::default()
        };
        let findings = check(&base, &slow_machine, &cross);
        assert_eq!(fails(&findings), 0, "{findings:?}");
        assert_eq!(findings.len(), 1, "throughput decay still warned");
        assert_eq!(
            fails(&check(&base, &slow_machine, &CheckConfig::default())),
            1
        );
        // A real engine regression: the ratio decays below tolerance
        // and breaches the 8x floor even cross-machine.
        let regressed = file(
            &[],
            &[
                ("seq_mcycles_per_sec", 15.0),
                ("seq_speedup_1thread_vs_scalar", 6.0),
            ],
        );
        let findings = check(&base, &regressed, &cross);
        assert!(fails(&findings) >= 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("hard floor")));
    }

    #[test]
    fn busy_fraction_and_faults_per_sec_demote_cross_machine() {
        // Utilisation and fault-grading rate shift with the core
        // count: warnings cross-machine, failures same-machine.
        let base = file(
            &[],
            &[
                ("parallel_busy_fraction", 0.9),
                ("faults_per_sec", 50_000.0),
            ],
        );
        let other_machine = file(
            &[],
            &[
                ("parallel_busy_fraction", 0.4),
                ("faults_per_sec", 20_000.0),
            ],
        );
        let cross = CheckConfig {
            medians_fail: false,
            ..CheckConfig::default()
        };
        let findings = check(&base, &other_machine, &cross);
        assert_eq!(fails(&findings), 0, "{findings:?}");
        assert_eq!(findings.len(), 2, "decays still warned: {findings:?}");
        assert_eq!(
            fails(&check(&base, &other_machine, &CheckConfig::default())),
            2
        );
    }

    #[test]
    fn cross_machine_mode_demotes_median_findings_only() {
        let cfg = CheckConfig {
            medians_fail: false,
            ..CheckConfig::default()
        };
        // A slower machine: every median 2x up, but the machine-relative
        // speedup ratio holds — the gate passes with warnings.
        let base = file(&[("a", 100.0)], &[("speedup_1thread_vs_scalar", 150.0)]);
        let slow_machine = file(&[("a", 200.0)], &[("speedup_1thread_vs_scalar", 149.0)]);
        let findings = check(&base, &slow_machine, &cfg);
        assert_eq!(fails(&findings), 0, "{findings:?}");
        assert_eq!(findings.len(), 1, "median slowdown still warned");
        // A real engine regression: the ratio decays and the floor
        // breaches — still failures in cross-machine mode.
        let regressed = file(&[("a", 200.0)], &[("speedup_1thread_vs_scalar", 75.0)]);
        let findings = check(&base, &regressed, &cfg);
        assert!(fails(&findings) >= 2, "{findings:?}");
    }

    #[test]
    fn floor_applies_even_when_baseline_already_decayed() {
        // Baseline itself below the floor: tolerance would pass, the
        // floor still fails.
        let base = file(&[], &[("speedup_1thread_vs_scalar", 90.0)]);
        let fresh = file(&[], &[("speedup_1thread_vs_scalar", 85.0)]);
        let findings = check(&base, &fresh, &CheckConfig::default());
        assert_eq!(fails(&findings), 1);
        assert!(findings[0].message.contains("hard floor"));
    }

    #[test]
    fn check_dirs_pairs_baselines_with_fresh_artifacts() {
        let root = std::env::temp_dir().join(format!("scdp_bench_check_{}", std::process::id()));
        let base_dir = root.join("base");
        let fresh_dir = root.join("fresh");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();
        let doc = "{\"bench\":\"units\",\"results\":[{\"id\":\"a\",\"median_ns\":10.0,\
                   \"min_ns\":9.0,\"samples\":3,\"elements\":0}],\"metrics\":[]}";
        std::fs::write(base_dir.join("BENCH_units.json"), doc).unwrap();
        std::fs::write(fresh_dir.join("BENCH_units.json"), doc).unwrap();
        std::fs::write(base_dir.join("BENCH_missing.json"), doc).unwrap();
        let (findings, compared) =
            check_dirs(&base_dir, &fresh_dir, &CheckConfig::default()).expect("dirs readable");
        assert_eq!(compared, 1);
        assert_eq!(fails(&findings), 1, "missing fresh file fails");
        std::fs::remove_dir_all(&root).ok();
    }
}
