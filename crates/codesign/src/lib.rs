//! The reliable hw/sw co-design flow (the paper's Figure 3).
//!
//! Starting from a self-checking specification (a loop-body
//! [`Dfg`](scdp_hls::Dfg) plus an [`SckStyle`](scdp_hls::SckStyle)), the flow derives:
//!
//! * a **hardware implementation** (the OFFIS → CoCentric path): SCK
//!   expansion, resource-constrained scheduling, binding, area in CLB
//!   slices, achievable clock and the `prologue + k·n` latency formula —
//!   the quantities of Table 3's upper half;
//! * a **software implementation** (the g++ path): an instruction-level
//!   cycle/size model of the same loop body — Table 3's lower half
//!   (measured wall-clock numbers come from the Criterion benches in
//!   `scdp-bench`, which run the real `scdp-fir` binaries);
//! * a trivial **partitioner** choosing an implementation per task under
//!   an area budget, completing the co-design story.
//!
//! # Example
//!
//! ```
//! use scdp_codesign::{CodesignFlow, Goal};
//! use scdp_hls::SckStyle;
//!
//! let flow = CodesignFlow::default();
//! let hw = flow.hardware(&scdp_fir_body(), SckStyle::Plain, Goal::MinArea);
//! assert!(hw.area_slices > 0.0);
//! assert!(hw.cycles_per_iteration >= 3); // 2-cycle multiply + add
//! # // Local stand-in for the FIR body used in the real crate tests.
//! # fn scdp_fir_body() -> scdp_hls::Dfg {
//! #     let mut d = scdp_hls::Dfg::new("body");
//! #     let a = d.input("a");
//! #     let b = d.input("b");
//! #     let m = d.op(scdp_hls::OpKind::Mul, &[a, b]);
//! #     let s = d.op(scdp_hls::OpKind::Add, &[m, a]);
//! #     d.output("y", s);
//! #     d
//! # }
//! ```

#![warn(missing_docs)]

mod flow;
mod partition;
mod sw;

pub use flow::{CodesignFlow, Goal, HwImplementation, Table3Report, Table3Row};
pub use partition::{partition, Mapping, PartitionProblem, TaskEstimate};
pub use sw::{SwCostModel, SwImplementation};
