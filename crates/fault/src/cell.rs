//! Truth-table cell faults: the paper's functional-level fault model.

use std::fmt;

/// The kind of 1-bit cell a fault applies to.
///
/// Each kind fixes the shape of the cell's truth table (number of input
/// rows and output bits), and therefore the size of its fault universe.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Full adder: inputs `(a, b, cin)`, outputs `(sum, cout)`.
    /// 8 rows × 2 outputs × 2 polarities = 32 faults (`num_faults_1bit`
    /// in the paper).
    FullAdder,
    /// Half adder: inputs `(a, b)`, outputs `(sum, cout)`. 16 faults.
    HalfAdder,
    /// Two-input AND (partial-product cell of an array multiplier).
    /// Inputs `(a, b)`, output `(y)`. 8 faults.
    And2,
    /// Two-input XOR (used in comparators and complementers).
    /// Inputs `(a, b)`, output `(y)`. 8 faults.
    Xor2,
    /// Two-input multiplexer cell: inputs `(a, b, sel)`, output `(y)`.
    /// 16 faults. Used by the restoring divider's restore step.
    Mux2,
}

impl CellKind {
    /// Number of inputs of this cell kind.
    #[must_use]
    pub const fn inputs(self) -> u8 {
        match self {
            CellKind::FullAdder | CellKind::Mux2 => 3,
            CellKind::HalfAdder | CellKind::And2 | CellKind::Xor2 => 2,
        }
    }

    /// Number of output bits of this cell kind.
    #[must_use]
    pub const fn outputs(self) -> u8 {
        match self {
            CellKind::FullAdder | CellKind::HalfAdder => 2,
            CellKind::And2 | CellKind::Xor2 | CellKind::Mux2 => 1,
        }
    }

    /// Number of truth-table rows (`2^inputs`).
    #[must_use]
    pub const fn rows(self) -> u8 {
        1 << self.inputs()
    }

    /// Size of the single-cell fault universe:
    /// `rows × outputs × 2` polarities.
    ///
    /// For [`CellKind::FullAdder`] this is the paper's
    /// `num_faults_1bit = 32`.
    #[must_use]
    pub const fn fault_count(self) -> u32 {
        (self.rows() as u32) * (self.outputs() as u32) * 2
    }

    /// Fault-free output value of this cell for a truth-table `row` and
    /// output index `output`.
    ///
    /// `row` packs the inputs little-endian: bit 0 is the first input.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()` or `output >= self.outputs()`.
    #[must_use]
    pub fn golden(self, row: u8, output: u8) -> bool {
        assert!(row < self.rows(), "row {row} out of range for {self:?}");
        assert!(
            output < self.outputs(),
            "output {output} out of range for {self:?}"
        );
        let a = row & 1 != 0;
        let b = row & 2 != 0;
        let c = row & 4 != 0;
        match (self, output) {
            (CellKind::FullAdder, 0) => a ^ b ^ c,
            (CellKind::FullAdder, 1) => (a & b) | (a & c) | (b & c),
            (CellKind::HalfAdder, 0) => a ^ b,
            (CellKind::HalfAdder, 1) => a & b,
            (CellKind::And2, 0) => a & b,
            (CellKind::Xor2, 0) => a ^ b,
            // Mux2: sel = c, y = sel ? b : a
            (CellKind::Mux2, 0) => {
                if c {
                    b
                } else {
                    a
                }
            }
            _ => unreachable!("output index validated above"),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::FullAdder => "FA",
            CellKind::HalfAdder => "HA",
            CellKind::And2 => "AND2",
            CellKind::Xor2 => "XOR2",
            CellKind::Mux2 => "MUX2",
        };
        f.write_str(name)
    }
}

/// A single truth-table fault of a 1-bit cell: output `output` of row
/// `row` is stuck at `stuck`.
///
/// A fault whose stuck value coincides with the fault-free value for that
/// row is *latent*: it never corrupts an output (see
/// [`CellFault::is_latent`]). The paper counts latent instances in the
/// fault universe (they are trivially covered: the result is correct), and
/// so do we — this is what makes `num_faults_1bit = 32` rather than 16.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellFault {
    kind: CellKind,
    row: u8,
    output: u8,
    stuck: bool,
}

impl CellFault {
    /// Creates a fault on `kind`'s truth table.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `output` are out of range for `kind`.
    #[must_use]
    pub fn new(kind: CellKind, row: u8, output: u8, stuck: bool) -> Self {
        assert!(row < kind.rows(), "row {row} out of range for {kind:?}");
        assert!(
            output < kind.outputs(),
            "output {output} out of range for {kind:?}"
        );
        Self {
            kind,
            row,
            output,
            stuck,
        }
    }

    /// Enumerates the complete single-cell fault universe for `kind`, in a
    /// stable order (row-major, output-minor, stuck-at-0 before stuck-at-1).
    pub fn enumerate(kind: CellKind) -> impl Iterator<Item = CellFault> {
        (0..kind.rows()).flat_map(move |row| {
            (0..kind.outputs()).flat_map(move |output| {
                [false, true]
                    .into_iter()
                    .map(move |stuck| CellFault::new(kind, row, output, stuck))
            })
        })
    }

    /// The cell kind this fault applies to.
    #[must_use]
    pub const fn kind(&self) -> CellKind {
        self.kind
    }

    /// The truth-table row (packed inputs, little-endian) the fault hits.
    #[must_use]
    pub const fn row(&self) -> u8 {
        self.row
    }

    /// The output index the fault hits.
    #[must_use]
    pub const fn output(&self) -> u8 {
        self.output
    }

    /// The value the faulty output is stuck at.
    #[must_use]
    pub const fn stuck(&self) -> bool {
        self.stuck
    }

    /// `true` if the stuck value equals the fault-free value, i.e. the
    /// fault can never corrupt an output.
    #[must_use]
    pub fn is_latent(&self) -> bool {
        self.kind.golden(self.row, self.output) == self.stuck
    }

    /// Applies the fault to a computed output bit.
    ///
    /// Returns the (possibly corrupted) value of output `output` given the
    /// active truth-table `row`.
    #[inline]
    #[must_use]
    pub fn apply(&self, row: u8, output: u8, golden: bool) -> bool {
        if row == self.row && output == self.output {
            self.stuck
        } else {
            golden
        }
    }
}

impl fmt::Display for CellFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[row={:03b}].out{} s-a-{}",
            self.kind,
            self.row,
            self.output,
            u8::from(self.stuck)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_full_adder_table() {
        // (a, b, cin) -> (sum, cout)
        let expect = [
            (0b000, false, false),
            (0b001, true, false),
            (0b010, true, false),
            (0b011, false, true),
            (0b100, true, false),
            (0b101, false, true),
            (0b110, false, true),
            (0b111, true, true),
        ];
        for (row, sum, cout) in expect {
            assert_eq!(CellKind::FullAdder.golden(row, 0), sum, "sum row {row}");
            assert_eq!(CellKind::FullAdder.golden(row, 1), cout, "cout row {row}");
        }
    }

    #[test]
    fn exactly_half_of_faults_are_latent() {
        for kind in [
            CellKind::FullAdder,
            CellKind::HalfAdder,
            CellKind::And2,
            CellKind::Xor2,
            CellKind::Mux2,
        ] {
            let latent = CellFault::enumerate(kind)
                .filter(CellFault::is_latent)
                .count();
            let total = CellFault::enumerate(kind).count();
            assert_eq!(total, kind.fault_count() as usize);
            // One of the two polarities always matches the golden value.
            assert_eq!(latent * 2, total, "{kind:?}");
        }
    }

    #[test]
    fn apply_only_hits_matching_row_and_output() {
        let f = CellFault::new(CellKind::FullAdder, 0b011, 0, true);
        // Matching row + output: forced to stuck value.
        assert!(f.apply(0b011, 0, false));
        // Same row, other output: untouched.
        assert!(!f.apply(0b011, 1, false));
        // Other row: untouched.
        assert!(!f.apply(0b010, 0, false));
    }

    #[test]
    fn display_is_informative() {
        let f = CellFault::new(CellKind::FullAdder, 5, 1, false);
        let s = f.to_string();
        assert!(s.contains("FA"), "{s}");
        assert!(s.contains("s-a-0"), "{s}");
    }

    #[test]
    fn mux_cell_selects() {
        // row = a | b<<1 | sel<<2
        assert!(!CellKind::Mux2.golden(0b010, 0)); // sel=0 -> a=0
        assert!(CellKind::Mux2.golden(0b110, 0)); // sel=1 -> b=1
        assert!(CellKind::Mux2.golden(0b001, 0)); // sel=0 -> a=1
        assert!(!CellKind::Mux2.golden(0b101, 0)); // sel=1 -> b=0
    }

    #[test]
    #[should_panic(expected = "row")]
    fn new_rejects_bad_row() {
        let _ = CellFault::new(CellKind::And2, 4, 0, false);
    }

    #[test]
    #[should_panic(expected = "output")]
    fn new_rejects_bad_output() {
        let _ = CellFault::new(CellKind::And2, 0, 1, false);
    }
}
