//! Criterion bench for the coverage engine itself: throughput of the
//! exhaustive Table 2 campaigns (situations classified per second) at
//! growing widths — the cost of regenerating the paper's data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scdp_core::Allocation;
use scdp_coverage::{CampaignBuilder, OperatorKind};

fn bench_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_campaign");
    for width in [1u32, 2, 3, 4] {
        let situations = 32u64 * u64::from(width) * (1 << (2 * width));
        group.throughput(Throughput::Elements(situations));
        group.bench_with_input(BenchmarkId::new("add", width), &width, |b, &w| {
            b.iter(|| {
                CampaignBuilder::new(OperatorKind::Add, w)
                    .allocation(Allocation::SingleUnit)
                    .threads(1)
                    .run()
            });
        });
    }
    group.finish();
}

fn bench_dual_unit(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_unit");
    group.bench_function("add_w4_dedicated", |b| {
        b.iter(|| {
            CampaignBuilder::new(OperatorKind::Add, 4)
                .allocation(Allocation::Dedicated)
                .threads(1)
                .run()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaigns, bench_dual_unit
}
criterion_main!(benches);
