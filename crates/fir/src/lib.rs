//! The paper's FIR case study (§5) and companion workloads.
//!
//! Three functionally equivalent FIR implementations reproduce the three
//! rows of Table 3:
//!
//! * [`PlainFir`] — ordinary integer arithmetic (the reference);
//! * [`SckFir`] — the same code with the self-checking data type
//!   [`Sck`](scdp_core::Sck) substituted for the integers ("FIR with
//!   SCK": transparent, every operation checked);
//! * [`EmbeddedFir`] — hand-embedded checks: the designer writes explicit
//!   verification of the MAC results, a single sticky error flag ("FIR
//!   embedded SCK").
//!
//! [`fir_body_dfg`] builds the loop-body dataflow graph consumed by the
//! `scdp-hls` flow to reproduce the hardware rows of Table 3.
//!
//! Companion workloads ([`iir`], [`dot`], [`matvec`]) exercise the same
//! API on the "other circuits … now taken into consideration" the paper
//! mentions.
//!
//! # Example
//!
//! ```
//! use scdp_fir::{PlainFir, SckFir};
//!
//! let coeffs = vec![1i32, -2, 3];
//! let mut plain = PlainFir::new(coeffs.clone());
//! let mut sck: SckFir = SckFir::new(coeffs);
//! for x in [5i32, 7, -1, 0, 3] {
//!     assert_eq!(plain.process(x), sck.process(x).value());
//! }
//! assert!(!sck.error());
//! ```

#![warn(missing_docs)]

mod dfg;
mod filter;
mod other_dfgs;
pub mod workloads;

pub use dfg::fir_body_dfg;
pub use filter::{EmbeddedFir, PlainFir, SckFir};
pub use other_dfgs::{dot_body_dfg, iir_biquad_dfg, matvec_row_dfg};
pub use workloads::{dot, iir, matvec};
