//! Quickstart: the self-checking data type in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use scdp::core::{context, Allocation, FaultSite, FaultyDataPath};
use scdp::fault::{FaGateFault, FaSite};
use scdp::{sck, SckError};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // 1. Sck<T> behaves exactly like the wrapped integer — the paper's
    //    transparency property. Only the declaration changes.
    let a = sck(100i32);
    let b = sck(-27i32);
    let sum = a + b;
    let prod = a * b;
    println!("sum  = {sum}   (error bit: {})", sum.error());
    println!("prod = {prod} (error bit: {})", prod.error());

    // 2. Every operator secretly verified itself: z = x + y was checked
    //    by recomputing x from z - y (Table 1, Tech1). On healthy
    //    hardware nothing fires.
    assert_eq!(sum.into_result(), Ok(73));

    // 3. Now execute the *same code* on a faulty functional-unit model:
    //    bit 3 of the 32-bit adder has its sum line stuck at 1.
    let fault = FaultSite::adder_gate(3, FaGateFault::new(FaSite::Sum, true));
    let dp = Rc::new(RefCell::new(FaultyDataPath::new(
        32,
        fault,
        Allocation::Dedicated, // checker runs on an independent unit
    )));
    let _guard = context::install(dp);

    let z = sck(1i32) + sck(2i32); // 1 + 2 = 11 on this broken adder
    println!(
        "\nfaulty adder says 1 + 2 = {} — error bit: {}",
        z,
        z.error()
    );
    assert_eq!(z.into_result(), Err(SckError::FaultDetected));

    // 4. The error bit is sticky and propagates through any further
    //    arithmetic, so one check at the system boundary suffices.
    let downstream = z * sck(1000i32) - sck(5i32);
    assert!(downstream.error());
    println!("downstream result {downstream} still carries the alarm");
}
