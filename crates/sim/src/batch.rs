//! Packed input batches and deterministic batch streams.

use scdp_rng::{Rng, Xoshiro256StarStar};

use crate::words::Words;

/// Number of input vectors packed into one machine word.
pub const LANES: usize = 64;

/// Bit `j` of `EXHAUSTIVE_PATTERN[i]` equals bit `i` of `j` — the packed
/// values of low input bit `i` across 64 consecutive assignments.
const EXHAUSTIVE_PATTERN: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Up to [`LANES`] input vectors, bit-sliced: `bits[i]` holds the value
/// of primary input bit `i` in every lane (lane = vector index within
/// the batch).
#[derive(Clone, Debug, Default)]
pub struct InputBatch {
    /// One packed word per primary input bit.
    pub bits: Vec<u64>,
    /// Number of valid lanes (1..=64); higher lanes are don't-care.
    pub len: usize,
}

impl InputBatch {
    /// Mask selecting the valid lanes.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.len == LANES {
            u64::MAX
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// The scalar assignment of lane `lane` (little-endian bit order),
    /// for differential testing against scalar evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.len`.
    #[must_use]
    pub fn lane_bits(&self, lane: usize) -> Vec<bool> {
        assert!(lane < self.len, "lane out of range");
        self.bits.iter().map(|w| (w >> lane) & 1 != 0).collect()
    }
}

/// Input-space strategy for a batched gate-level campaign.
///
/// This is the batched twin of [`scdp_coverage::InputSpace`]: the same
/// two strategies (exhaustive enumeration, seeded Monte-Carlo), but
/// producing bit-sliced 64-lane batches instead of scalar operand
/// pairs. [`InputPlan::from_space`] converts between the two so
/// campaign front-ends can share one configuration value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InputPlan {
    /// Every assignment of the primary inputs, in numeric order.
    Exhaustive,
    /// `vectors` random assignments from a xoshiro stream seeded with
    /// `seed` (identical regardless of batch boundaries or threads).
    Sampled {
        /// Total number of random input vectors.
        vectors: u64,
        /// Stream seed.
        seed: u64,
    },
}

impl InputPlan {
    /// Converts the functional-level campaign configuration into a
    /// batched plan. Exhaustive maps to exhaustive; `Sampled` draws
    /// `per_fault` vectors (PPSFP shares one input stream across the
    /// whole universe, so `per_fault` becomes the per-campaign count).
    #[must_use]
    pub fn from_space(space: scdp_coverage::InputSpace) -> Self {
        match space {
            scdp_coverage::InputSpace::Exhaustive => InputPlan::Exhaustive,
            scdp_coverage::InputSpace::Sampled { per_fault, seed } => InputPlan::Sampled {
                vectors: per_fault,
                seed,
            },
        }
    }

    /// The standard campaign policy: exhaustive while the input space
    /// fits in 2^20 vectors, seeded Monte-Carlo sampling beyond. One
    /// place to change the threshold for every campaign front-end
    /// (`scdp_coverage::InputSpace::auto` is the scalar twin with the
    /// same cut-over width).
    #[must_use]
    pub fn auto(input_bits: usize, vectors: u64, seed: u64) -> Self {
        if input_bits <= 20 {
            InputPlan::Exhaustive
        } else {
            InputPlan::Sampled { vectors, seed }
        }
    }

    /// Total number of vectors for `input_bits` primary input bits.
    ///
    /// # Panics
    ///
    /// Panics if an exhaustive plan is requested for more than 63 input
    /// bits (use sampling there).
    #[must_use]
    pub fn vector_count(&self, input_bits: usize) -> u64 {
        match *self {
            InputPlan::Exhaustive => {
                assert!(
                    input_bits < 64,
                    "exhaustive space too large; sample instead"
                );
                1u64 << input_bits
            }
            InputPlan::Sampled { vectors, .. } => vectors,
        }
    }

    /// A fresh deterministic stream of batches for a netlist with
    /// `input_bits` primary input bits.
    ///
    /// # Panics
    ///
    /// Panics if an exhaustive plan is requested for more than 63 input
    /// bits.
    #[must_use]
    pub fn stream(&self, input_bits: usize) -> BatchStream {
        let remaining = self.vector_count(input_bits);
        BatchStream {
            input_bits,
            remaining,
            base: 0,
            rng: match *self {
                InputPlan::Exhaustive => None,
                InputPlan::Sampled { seed, .. } => Some(Xoshiro256StarStar::from_seed(seed)),
            },
        }
    }

    /// A fresh deterministic stream of [`WideBatch`]es: the same
    /// batches as [`InputPlan::stream`], fused `L` at a time.
    ///
    /// # Panics
    ///
    /// Panics if an exhaustive plan is requested for more than 63 input
    /// bits.
    #[must_use]
    pub fn wide_stream<const L: usize>(&self, input_bits: usize) -> WideStream<L> {
        WideStream {
            inner: self.stream(input_bits),
        }
    }
}

impl From<scdp_coverage::InputSpace> for InputPlan {
    fn from(space: scdp_coverage::InputSpace) -> InputPlan {
        InputPlan::from_space(space)
    }
}

/// Iterator over the [`InputBatch`]es of an [`InputPlan`].
///
/// The stream is a pure function of the plan, so independent workers can
/// each run their own copy and see identical batches — the basis of the
/// thread-count-independent campaign results.
#[derive(Clone, Debug)]
pub struct BatchStream {
    input_bits: usize,
    remaining: u64,
    base: u64,
    rng: Option<Xoshiro256StarStar>,
}

impl Iterator for BatchStream {
    type Item = InputBatch;

    fn next(&mut self) -> Option<InputBatch> {
        if self.remaining == 0 {
            return None;
        }
        let len = self.remaining.min(LANES as u64) as usize;
        self.remaining -= len as u64;
        let bits = match &mut self.rng {
            Some(rng) => (0..self.input_bits).map(|_| rng.next_u64()).collect(),
            None => {
                // Exhaustive: lane j encodes assignment `base + j`, so
                // bits 0..6 follow fixed alternation patterns and bits
                // >= 6 are constant within one 64-aligned batch.
                let base = self.base;
                let words = (0..self.input_bits)
                    .map(|i| {
                        if i < EXHAUSTIVE_PATTERN.len() {
                            EXHAUSTIVE_PATTERN[i]
                        } else if (base >> i) & 1 != 0 {
                            u64::MAX
                        } else {
                            0
                        }
                    })
                    .collect();
                self.base += len as u64;
                words
            }
        };
        Some(InputBatch { bits, len })
    }
}

/// Up to `64 * L` input vectors, bit-sliced into `L`-limb words:
/// limb `k` of `bits[i]` is exactly `bits[i]` of the `k`-th consecutive
/// scalar [`InputBatch`] the plan would have produced.
///
/// That limb-order contract is what lets campaign drivers consume wide
/// results one limb at a time and stay bit-identical to the scalar
/// path — including the exact point at which fault dropping triggers.
#[derive(Clone, Debug)]
pub struct WideBatch<const L: usize> {
    /// One wide word per primary input bit.
    pub bits: Vec<Words<L>>,
    /// Per-limb valid-lane masks (the scalar batches' `mask()`s).
    pub mask: Words<L>,
    /// Number of limbs holding real batches (1..=L); higher limbs have
    /// an all-zero mask.
    pub limbs: usize,
}

/// Iterator fusing the scalar [`BatchStream`] `L` batches at a time.
///
/// Like `BatchStream`, the stream is a pure function of the plan, so
/// independent workers can each run their own copy and see identical
/// wide batches.
#[derive(Clone, Debug)]
pub struct WideStream<const L: usize> {
    inner: BatchStream,
}

impl<const L: usize> Iterator for WideStream<L> {
    type Item = WideBatch<L>;

    fn next(&mut self) -> Option<WideBatch<L>> {
        let first = self.inner.next()?;
        let input_bits = first.bits.len();
        let mut bits = vec![Words::<L>::ZERO; input_bits];
        let mut mask = Words::<L>::ZERO;
        let mut limbs = 0;
        let mut batch = Some(first);
        while limbs < L {
            let Some(b) = batch.take() else { break };
            for (wide, &word) in bits.iter_mut().zip(&b.bits) {
                wide.0[limbs] = word;
            }
            mask.0[limbs] = b.mask();
            limbs += 1;
            if limbs < L {
                batch = self.inner.next();
            }
        }
        Some(WideBatch { bits, mask, limbs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_covers_every_assignment_once() {
        let plan = InputPlan::Exhaustive;
        let mut seen = [false; 1 << 7];
        for batch in plan.stream(7) {
            for lane in 0..batch.len {
                let bits = batch.lane_bits(lane);
                let idx = bits
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (i, &b)| acc | (usize::from(b) << i));
                assert!(!seen[idx], "assignment {idx} repeated");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn small_exhaustive_space_fits_one_partial_batch() {
        let batches: Vec<_> = InputPlan::Exhaustive.stream(3).collect();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len, 8);
        assert_eq!(batches[0].mask(), 0xFF);
    }

    #[test]
    fn sampled_stream_is_deterministic() {
        let plan = InputPlan::Sampled {
            vectors: 130,
            seed: 99,
        };
        let a: Vec<_> = plan.stream(5).map(|b| b.bits).collect();
        let b: Vec<_> = plan.stream(5).map(|b| b.bits).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3, "130 vectors = 64 + 64 + 2 lanes");
    }

    #[test]
    fn wide_stream_limbs_match_scalar_batches() {
        for plan in [
            InputPlan::Exhaustive,
            InputPlan::Sampled {
                vectors: 700,
                seed: 42,
            },
        ] {
            let scalar: Vec<_> = plan.stream(9).collect();
            let mut k = 0;
            for wide in plan.wide_stream::<4>(9) {
                assert!(wide.limbs >= 1 && wide.limbs <= 4);
                for limb in 0..wide.limbs {
                    let b = &scalar[k];
                    for (i, w) in wide.bits.iter().enumerate() {
                        assert_eq!(w.limb(limb), b.bits[i], "bit {i} limb {limb}");
                    }
                    assert_eq!(wide.mask.limb(limb), b.mask());
                    k += 1;
                }
                for limb in wide.limbs..4 {
                    assert_eq!(wide.mask.limb(limb), 0, "dead limb must be masked off");
                }
            }
            assert_eq!(k, scalar.len(), "wide stream must cover every batch");
        }
    }

    #[test]
    fn vector_counts() {
        assert_eq!(InputPlan::Exhaustive.vector_count(10), 1024);
        let s = InputPlan::Sampled {
            vectors: 7,
            seed: 0,
        };
        assert_eq!(s.vector_count(60), 7);
    }
}
