//! The levelized bit-parallel gate evaluator.
//!
//! Evaluation is generic over [`LaneWord`]: the same forward pass runs
//! on single `u64` words (64 vectors per gate op, the public
//! differential-test path) or on [`Words<L>`] wide words (256/512
//! vectors per gate op, the campaign hot path).

use crate::batch::{InputBatch, WideBatch};
use crate::error::SimError;
use crate::words::{LaneWord, Words};
use scdp_netlist::{GateKind, Netlist, StuckAtLine};

/// A netlist compiled for bit-parallel evaluation.
///
/// Construction copies the gate array into structure-of-arrays form
/// (kind / input-a / input-b as parallel `Vec`s) and resolves the
/// output roles: every bus named `error` is an *alarm* bus, every other
/// output bus is part of the *result*. Netlists are already stored in
/// topological order, so evaluation is one forward pass.
#[derive(Clone, Debug)]
pub struct Engine {
    kinds: Vec<GateKind>,
    a: Vec<u32>,
    b: Vec<u32>,
    input_bits: usize,
    result_nets: Vec<u32>,
    alarm_nets: Vec<u32>,
    name: String,
}

/// Packed verdict of one faulty batch against the good machine, already
/// restricted to the valid lanes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Lanes whose result-bus values differ from the good machine.
    pub wrong: u64,
    /// Lanes where an alarm net is asserted.
    pub alarm: u64,
    /// Mask of lanes that carry real vectors.
    pub mask: u64,
}

impl BatchOutcome {
    /// Lanes in the `ErrorUndetected` class (wrong result, silent
    /// checks) — the paper's uncovered situations.
    #[must_use]
    pub fn escapes(&self) -> u64 {
        self.wrong & !self.alarm
    }

    /// Situation counts in taxonomy order: `(correct_silent,
    /// correct_detected, error_detected, error_undetected)`.
    #[must_use]
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let wrong = self.wrong & self.mask;
        let alarm = self.alarm & self.mask;
        let eu = (wrong & !alarm).count_ones() as u64;
        let ed = (wrong & alarm).count_ones() as u64;
        let cd = (!wrong & alarm & self.mask).count_ones() as u64;
        let cs = self.mask.count_ones() as u64 - eu - ed - cd;
        (cs, cd, ed, eu)
    }
}

/// Packed verdict of one faulty *wide* batch (`64 * L` vectors) against
/// the good machine. Campaign drivers consume it one limb at a time via
/// [`WideOutcome::limb`], in scalar-batch order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WideOutcome<const L: usize> {
    /// Lanes whose result-bus values differ from the good machine.
    pub wrong: Words<L>,
    /// Lanes where an alarm net is asserted.
    pub alarm: Words<L>,
    /// Mask of lanes that carry real vectors.
    pub mask: Words<L>,
}

impl<const L: usize> WideOutcome<L> {
    /// The verdict of limb `k` — exactly the [`BatchOutcome`] the
    /// scalar path would have produced for the `k`-th batch.
    #[must_use]
    pub fn limb(&self, k: usize) -> BatchOutcome {
        BatchOutcome {
            wrong: self.wrong.limb(k),
            alarm: self.alarm.limb(k),
            mask: self.mask.limb(k),
        }
    }
}

impl Engine {
    /// Compiles `netlist` for packed evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist holds state (Dff cells) — use
    /// [`crate::SeqEngine`] for cycle-accurate evaluation.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        assert!(
            !netlist.is_sequential(),
            "combinational engine cannot evaluate a sequential netlist; use SeqEngine"
        );
        let gates = netlist.gates();
        let mut kinds = Vec::with_capacity(gates.len());
        let mut a = Vec::with_capacity(gates.len());
        let mut b = Vec::with_capacity(gates.len());
        for g in gates {
            kinds.push(g.kind);
            a.push(g.a.map_or(0, |n| n.index() as u32));
            b.push(g.b.map_or(0, |n| n.index() as u32));
        }
        let mut result_nets = Vec::new();
        let mut alarm_nets = Vec::new();
        for (name, bus) in netlist.outputs() {
            let target = if name == "error" {
                &mut alarm_nets
            } else {
                &mut result_nets
            };
            target.extend(bus.iter().map(|n| n.index() as u32));
        }
        Self {
            kinds,
            a,
            b,
            input_bits: netlist.input_bits(),
            result_nets,
            alarm_nets,
            name: netlist.name().to_string(),
        }
    }

    /// The compiled design's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (= gates) in the compiled netlist.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary input bits expected per batch.
    #[must_use]
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Validates a fault list against the compiled netlist: every line
    /// must name an existing gate and, for pin faults, an input pin the
    /// gate actually has. Campaign drivers call this once per fault
    /// group *before* simulation so a malformed spec becomes a typed
    /// error instead of aborting a running (possibly sharded) campaign.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found, in fault-list order.
    pub fn check_faults(&self, faults: &[StuckAtLine]) -> Result<(), SimError> {
        check_lines(&self.kinds, faults)
    }

    /// Evaluates one packed batch under `faults` into `values` (one
    /// word per net, reused across calls to avoid allocation).
    ///
    /// `faults` must be sorted by gate index (fault groups produced by
    /// [`crate::EngineCampaign`] are; assert-checked in debug builds).
    /// The fault-free fast path costs one table-dispatched bitwise op
    /// per gate per 64 vectors; faulted gates take a slow path that
    /// applies pin overrides before and the stem override after the
    /// gate function.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the netlist.
    pub fn eval_batch_into(
        &self,
        batch: &InputBatch,
        faults: &[StuckAtLine],
        values: &mut Vec<u64>,
    ) {
        self.eval_words_into(&batch.bits, faults, values);
    }

    /// Wide twin of [`Engine::eval_batch_into`]: evaluates `64 * L`
    /// vectors per forward pass. Same fault semantics, same sort
    /// requirement on `faults`.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the netlist.
    pub fn eval_wide_into<const L: usize>(
        &self,
        batch: &WideBatch<L>,
        faults: &[StuckAtLine],
        values: &mut Vec<Words<L>>,
    ) {
        self.eval_words_into(&batch.bits, faults, values);
    }

    /// The generic forward pass shared by the scalar and wide paths.
    fn eval_words_into<W: LaneWord>(
        &self,
        bits: &[W],
        faults: &[StuckAtLine],
        values: &mut Vec<W>,
    ) {
        assert_eq!(bits.len(), self.input_bits, "input bit count mismatch");
        debug_assert!(
            faults.windows(2).all(|w| w[0].site.gate <= w[1].site.gate),
            "fault list must be sorted by gate"
        );
        let n = self.kinds.len();
        values.clear();
        values.resize(n, W::ZERO);
        let mut next_input = 0usize;
        let mut fi = 0usize;
        let mut fault_gate = faults.first().map_or(usize::MAX, |f| f.site.gate);
        for i in 0..n {
            let out = if i == fault_gate {
                // Slow path: apply every fault attached to this gate.
                let mut pin0 = None;
                let mut pin1 = None;
                let mut stem = None;
                while fi < faults.len() && faults[fi].site.gate == i {
                    match faults[fi].site.pin {
                        Some(0) => pin0 = Some(faults[fi].value),
                        Some(1) => pin1 = Some(faults[fi].value),
                        // Rejected by `check_faults`; ignored here so a
                        // line smuggled past validation through the raw
                        // batch API cannot abort a campaign.
                        Some(_) => {}
                        None => stem = Some(faults[fi].value),
                    }
                    fi += 1;
                }
                fault_gate = faults.get(fi).map_or(usize::MAX, |f| f.site.gate);
                let read = |pin: Option<bool>, net: u32, values: &[W]| -> W {
                    pin.map_or(values[net as usize], W::splat)
                };
                let out = match self.kinds[i] {
                    GateKind::Input => {
                        let v = bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => W::splat(c),
                    GateKind::Not => !read(pin0, self.a[i], values),
                    GateKind::Buf => read(pin0, self.a[i], values),
                    kind => {
                        let va = read(pin0, self.a[i], values);
                        let vb = read(pin1, self.b[i], values);
                        apply2(kind, va, vb)
                    }
                };
                stem.map_or(out, W::splat)
            } else {
                match self.kinds[i] {
                    GateKind::Input => {
                        let v = bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => W::splat(c),
                    GateKind::Not => !values[self.a[i] as usize],
                    GateKind::Buf => values[self.a[i] as usize],
                    kind => apply2(kind, values[self.a[i] as usize], values[self.b[i] as usize]),
                }
            };
            // Lanes beyond the batch length hold junk; harmless, masked
            // later.
            values[i] = out;
        }
    }

    /// Convenience wrapper allocating a fresh value vector.
    #[must_use]
    pub fn eval_batch(&self, batch: &InputBatch, faults: &[StuckAtLine]) -> Vec<u64> {
        let mut values = Vec::new();
        self.eval_batch_into(batch, faults, &mut values);
        values
    }

    /// Compares a faulty evaluation against the good machine over one
    /// batch, producing the packed taxonomy masks.
    #[must_use]
    pub fn compare(&self, good: &[u64], faulty: &[u64], mask: u64) -> BatchOutcome {
        let (wrong, alarm) = self.compare_words(good, faulty, mask);
        BatchOutcome { wrong, alarm, mask }
    }

    /// Wide twin of [`Engine::compare`].
    #[must_use]
    pub fn compare_wide<const L: usize>(
        &self,
        good: &[Words<L>],
        faulty: &[Words<L>],
        mask: Words<L>,
    ) -> WideOutcome<L> {
        let (wrong, alarm) = self.compare_words(good, faulty, mask);
        WideOutcome { wrong, alarm, mask }
    }

    fn compare_words<W: LaneWord>(&self, good: &[W], faulty: &[W], mask: W) -> (W, W) {
        let mut wrong = W::ZERO;
        for &net in &self.result_nets {
            wrong = wrong | (good[net as usize] ^ faulty[net as usize]);
        }
        let mut alarm = W::ZERO;
        for &net in &self.alarm_nets {
            alarm = alarm | faulty[net as usize];
        }
        (wrong & mask, alarm & mask)
    }
}

/// The shared fault-list validation of both engines.
pub(crate) fn check_lines(kinds: &[GateKind], faults: &[StuckAtLine]) -> Result<(), SimError> {
    for f in faults {
        let gate = f.site.gate;
        let Some(kind) = kinds.get(gate) else {
            return Err(SimError::GateOutOfRange {
                gate,
                gates: kinds.len(),
            });
        };
        if let Some(pin) = f.site.pin {
            let pins = kind.pins();
            if pin >= pins {
                return Err(SimError::PinOutOfRange { gate, pin, pins });
            }
        }
    }
    Ok(())
}

/// The two-input gate functions, shared by both engines and all lane
/// widths.
#[inline]
pub(crate) fn apply2<W: LaneWord>(kind: GateKind, a: W, b: W) -> W {
    match kind {
        GateKind::And => a & b,
        GateKind::Or => a | b,
        GateKind::Xor => a ^ b,
        GateKind::Nand => !(a & b),
        GateKind::Nor => !(a | b),
        GateKind::Xnor => !(a ^ b),
        _ => unreachable!("two-input kinds only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::InputPlan;
    use scdp_netlist::{NetlistBuilder, StuckSite};

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("xor");
        let x = b.input_bus("x", 2);
        let y = b.xor(x[0], x[1]);
        b.output("y", &[y]);
        b.finish()
    }

    #[test]
    fn packed_matches_scalar_on_xor() {
        let nl = xor_netlist();
        let engine = Engine::new(&nl);
        for batch in InputPlan::Exhaustive.stream(2) {
            let packed = engine.eval_batch(&batch, &[]);
            for lane in 0..batch.len {
                let scalar = nl.eval_nets(&batch.lane_bits(lane), &[]);
                for (net, word) in packed.iter().enumerate() {
                    assert_eq!(
                        (word >> lane) & 1 != 0,
                        scalar[net],
                        "net {net} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn stem_and_pin_faults_match_scalar() {
        let nl = xor_netlist();
        let engine = Engine::new(&nl);
        let cases = [
            StuckAtLine::new(StuckSite { gate: 2, pin: None }, true),
            StuckAtLine::new(
                StuckSite {
                    gate: 2,
                    pin: Some(1),
                },
                false,
            ),
            StuckAtLine::new(StuckSite { gate: 0, pin: None }, true),
        ];
        for fault in cases {
            for batch in InputPlan::Exhaustive.stream(2) {
                let packed = engine.eval_batch(&batch, &[fault]);
                for lane in 0..batch.len {
                    let scalar = nl.eval_nets(&batch.lane_bits(lane), &[fault]);
                    for (net, word) in packed.iter().enumerate() {
                        assert_eq!(
                            (word >> lane) & 1 != 0,
                            scalar[net],
                            "{fault:?} net {net} lane {lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn wide_eval_limbs_match_scalar_eval() {
        // 8 inputs -> 256 vectors -> several scalar batches per wide
        // batch at L = 4.
        let mut b = NetlistBuilder::new("wide");
        let x = b.input_bus("x", 8);
        let mut acc = x[0];
        for (i, &xi) in x.iter().enumerate().skip(1) {
            acc = match i % 3 {
                0 => b.and(acc, xi),
                1 => b.xor(acc, xi),
                _ => b.nor(acc, xi),
            };
        }
        b.output("y", &[acc]);
        let nl = b.finish();
        let engine = Engine::new(&nl);
        let fault = StuckAtLine::new(
            StuckSite {
                gate: 9,
                pin: Some(0),
            },
            true,
        );
        for faults in [&[][..], &[fault][..]] {
            let plan = InputPlan::Exhaustive;
            let scalar: Vec<Vec<u64>> = plan
                .stream(8)
                .map(|batch| engine.eval_batch(&batch, faults))
                .collect();
            let mut k = 0;
            let mut values = Vec::new();
            for wide in plan.wide_stream::<4>(8) {
                engine.eval_wide_into(&wide, faults, &mut values);
                for limb in 0..wide.limbs {
                    for (net, w) in values.iter().enumerate() {
                        assert_eq!(w.limb(limb), scalar[k][net], "net {net} batch {k}");
                    }
                    k += 1;
                }
            }
            assert_eq!(k, scalar.len());
        }
    }

    #[test]
    fn wide_compare_limbs_match_scalar_compare() {
        let nl = xor_netlist();
        let engine = Engine::new(&nl);
        let fault = StuckAtLine::new(StuckSite { gate: 2, pin: None }, true);
        let wide = InputPlan::Exhaustive.wide_stream::<4>(2).next().unwrap();
        let mut good = Vec::new();
        let mut faulty = Vec::new();
        engine.eval_wide_into(&wide, &[], &mut good);
        engine.eval_wide_into(&wide, &[fault], &mut faulty);
        let outcome = engine.compare_wide(&good, &faulty, wide.mask);
        let batch = InputPlan::Exhaustive.stream(2).next().unwrap();
        let sg = engine.eval_batch(&batch, &[]);
        let sf = engine.eval_batch(&batch, &[fault]);
        assert_eq!(outcome.limb(0), engine.compare(&sg, &sf, batch.mask()));
        for limb in 1..4 {
            assert_eq!(outcome.limb(limb).mask, 0, "dead limbs stay masked");
        }
    }

    #[test]
    fn outcome_counts_partition_the_mask() {
        let o = BatchOutcome {
            wrong: 0b1100,
            alarm: 0b1010,
            mask: 0b1111,
        };
        let (cs, cd, ed, eu) = o.counts();
        assert_eq!((cs, cd, ed, eu), (1, 1, 1, 1));
        assert_eq!(o.escapes(), 0b0100);
    }

    #[test]
    fn error_bus_is_alarm_role() {
        let mut b = NetlistBuilder::new("roles");
        let x = b.input_bus("x", 1);
        b.output("ris", &[x[0]]);
        b.output("error", &[x[0]]);
        let engine = Engine::new(&b.finish());
        assert_eq!(engine.result_nets, vec![0]);
        assert_eq!(engine.alarm_nets, vec![0]);
    }
}
