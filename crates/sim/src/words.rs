//! Multi-word SIMD lanes: the `Words<const L: usize>` abstraction.
//!
//! The original engine packed 64 input vectors into one `u64` per net.
//! Modern cores move 256/512 bits per vector instruction, so the packed
//! evaluators are generic over a [`LaneWord`] — anything that behaves
//! like a word of independent boolean lanes. Two implementations exist:
//!
//! * `u64` — the classic single-word path, kept for the public
//!   differential-test API;
//! * [`Words<L>`] — `L` `u64` limbs evaluated together (`L ∈ {4, 8}` in
//!   practice, i.e. 256/512 lanes per gate operation). The bitwise ops
//!   are plain array loops; the compiler auto-vectorises them to
//!   AVX2/AVX-512/NEON without any `unsafe` or intrinsics, which
//!   matters because this workspace forbids `unsafe_code`.
//!
//! Lane-order contract: limb `k` of a wide word corresponds to the
//! `k`-th consecutive 64-vector scalar batch (see
//! [`crate::InputPlan::wide_stream`]). Campaign drivers consume wide
//! verdicts limb by limb in that order, which keeps tallies, drop
//! points and latency histograms bit-identical across lane widths.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A word of 64 independent boolean lanes — or several of them fused.
///
/// The packed evaluators ([`crate::Engine`], [`crate::SeqEngine`]) are
/// generic over this trait; gate evaluation uses only the bitwise ops
/// plus [`LaneWord::splat`] for stuck-value injection.
pub trait LaneWord:
    Copy
    + Eq
    + Send
    + Sync
    + fmt::Debug
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
{
    /// All lanes clear.
    const ZERO: Self;
    /// All lanes set.
    const ALL: Self;
    /// Number of 64-bit limbs (`width() / 64`).
    const LIMBS: usize;

    /// Splats one logic value across every lane.
    #[must_use]
    fn splat(value: bool) -> Self {
        if value {
            Self::ALL
        } else {
            Self::ZERO
        }
    }

    /// `true` when no lane is set.
    #[must_use]
    fn is_zero(self) -> bool;
}

impl LaneWord for u64 {
    const ZERO: Self = 0;
    const ALL: Self = u64::MAX;
    const LIMBS: usize = 1;

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }
}

/// `L` fused 64-lane words: `64 * L` input vectors per gate operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Words<const L: usize>(pub [u64; L]);

impl<const L: usize> Words<L> {
    /// All lanes clear.
    pub const ZERO: Self = Words([0; L]);
    /// All lanes set.
    pub const ALL: Self = Words([u64::MAX; L]);

    /// Total number of boolean lanes.
    pub const LANES: usize = 64 * L;

    /// The `k`-th 64-lane limb.
    #[inline]
    #[must_use]
    pub fn limb(self, k: usize) -> u64 {
        self.0[k]
    }

    /// Number of set lanes across all limbs.
    #[inline]
    #[must_use]
    pub fn count_ones(self) -> u64 {
        let mut n = 0u64;
        let mut i = 0;
        while i < L {
            n += self.0[i].count_ones() as u64;
            i += 1;
        }
        n
    }
}

impl<const L: usize> Default for Words<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> LaneWord for Words<L> {
    const ZERO: Self = Words([0; L]);
    const ALL: Self = Words([u64::MAX; L]);
    const LIMBS: usize = L;

    #[inline]
    fn is_zero(self) -> bool {
        let mut i = 0;
        while i < L {
            if self.0[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }
}

impl<const L: usize> BitAnd for Words<L> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        Words(std::array::from_fn(|i| self.0[i] & rhs.0[i]))
    }
}

impl<const L: usize> BitOr for Words<L> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        Words(std::array::from_fn(|i| self.0[i] | rhs.0[i]))
    }
}

impl<const L: usize> BitXor for Words<L> {
    type Output = Self;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        Words(std::array::from_fn(|i| self.0[i] ^ rhs.0[i]))
    }
}

impl<const L: usize> Not for Words<L> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        Words(std::array::from_fn(|i| !self.0[i]))
    }
}

/// Lane-width selection for the packed campaign drivers.
///
/// `Auto` resolves to the widest supported configuration (8 limbs, 512
/// vectors per gate operation); the explicit variants pin the width for
/// differential testing and benchmarking. Results are bit-identical at
/// every width — the drivers consume wide verdicts limb by limb in
/// scalar-batch order — so this knob trades nothing but throughput.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Lanes {
    /// Widest supported path (currently [`Lanes::L8`]).
    #[default]
    Auto,
    /// One 64-lane word per operation (the original engine).
    L1,
    /// Four limbs: 256 lanes per operation.
    L4,
    /// Eight limbs: 512 lanes per operation.
    L8,
}

impl Lanes {
    /// The lane widths a campaign driver can be asked to pin.
    pub const CHOICES: [Lanes; 3] = [Lanes::L1, Lanes::L4, Lanes::L8];

    /// Number of 64-bit limbs this selection resolves to.
    #[must_use]
    pub const fn limbs(self) -> usize {
        match self {
            Lanes::L1 => 1,
            Lanes::L4 => 4,
            Lanes::Auto | Lanes::L8 => 8,
        }
    }

    /// Number of boolean lanes (`64 * limbs`).
    #[must_use]
    pub const fn width(self) -> usize {
        64 * self.limbs()
    }

    /// Parses a limb count (`1`, `4` or `8`).
    #[must_use]
    pub const fn from_limbs(limbs: usize) -> Option<Lanes> {
        match limbs {
            1 => Some(Lanes::L1),
            4 => Some(Lanes::L4),
            8 => Some(Lanes::L8),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_bitwise_ops_act_per_limb() {
        let a = Words([0b1100u64, u64::MAX, 0, 5]);
        let b = Words([0b1010u64, 0, u64::MAX, 12]);
        assert_eq!((a & b).0, [0b1000, 0, 0, 4]);
        assert_eq!((a | b).0, [0b1110, u64::MAX, u64::MAX, 13]);
        assert_eq!((a ^ b).0, [0b0110, u64::MAX, u64::MAX, 9]);
        assert_eq!((!Words::<4>::ZERO).0, [u64::MAX; 4]);
    }

    #[test]
    fn splat_zero_and_counts() {
        assert_eq!(Words::<8>::splat(true), Words::<8>::ALL);
        assert_eq!(Words::<8>::splat(false), Words::<8>::ZERO);
        assert!(Words::<4>::ZERO.is_zero());
        assert!(!Words([0, 0, 1, 0]).is_zero());
        assert_eq!(Words([3u64, 0, u64::MAX, 1]).count_ones(), 2 + 64 + 1);
        assert_eq!(<u64 as LaneWord>::splat(true), u64::MAX);
        assert!(0u64.is_zero());
    }

    #[test]
    fn lanes_resolution() {
        assert_eq!(Lanes::Auto.limbs(), 8);
        assert_eq!(Lanes::L1.width(), 64);
        assert_eq!(Lanes::L4.width(), 256);
        assert_eq!(Lanes::L8.width(), 512);
        assert_eq!(Lanes::from_limbs(4), Some(Lanes::L4));
        assert_eq!(Lanes::from_limbs(3), None);
        assert_eq!(Lanes::default(), Lanes::Auto);
    }
}
