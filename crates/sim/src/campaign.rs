//! Parallel gate-level campaign driver with fault dropping.

use crate::batch::InputPlan;
use crate::engine::Engine;
use crate::error::SimError;
use crate::par::{self, PoolStats};
use crate::words::{LaneWord, Lanes};
use scdp_coverage::TechTally;
use scdp_netlist::gen::SelfCheckingDatapath;
use scdp_netlist::StuckAtLine;
use scdp_obs::Recorder;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When a fault leaves the simulated universe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Keep every fault live through the whole input space, producing
    /// exact situation tallies — what coverage classification needs.
    Never,
    /// Drop a fault after the first batch in which a check fires
    /// (classic detectability fault grading). Tallies are partial.
    OnDetect,
    /// Drop a fault after the first batch containing an undetected
    /// erroneous lane — the fault is proven *unsafe* and further
    /// simulation cannot change that verdict. Tallies are partial.
    OnEscape,
}

/// Per-fault result of a campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Situation tallies (exact for [`DropPolicy::Never`], partial up
    /// to the dropping batch otherwise).
    pub tally: TechTally,
    /// A check fired in at least one simulated situation.
    pub detected: bool,
    /// At least one simulated situation was an undetected error.
    pub escaped: bool,
    /// Situations simulated before the fault was dropped (`None` when
    /// it stayed live to the end).
    pub dropped_after: Option<u64>,
}

/// Aggregate result of a gate-level campaign.
#[derive(Clone, Debug)]
pub struct CampaignSummary {
    /// One outcome per fault group, in universe order.
    pub per_fault: Vec<FaultOutcome>,
    /// Sum of all per-fault tallies.
    pub tally: TechTally,
    /// Situations actually simulated (drops make this smaller than
    /// `faults × vectors`).
    pub simulated: u64,
    /// The fault-free **baseline probe**: the outcome of replaying the
    /// batch stream with an empty fault group, computed once when any
    /// group was skipped via [`EngineCampaign::skip_resolved`] (`None`
    /// otherwise). Skipped entries of `per_fault` hold a copy of it.
    pub baseline: Option<FaultOutcome>,
}

impl CampaignSummary {
    /// Fraction of faults with at least one alarmed situation.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| f.detected).count() as f64 / self.per_fault.len() as f64
    }

    /// Fraction of faults that never produced an undetected error.
    #[must_use]
    pub fn safe_rate(&self) -> f64 {
        if self.per_fault.is_empty() {
            return 1.0;
        }
        self.per_fault.iter().filter(|f| !f.escaped).count() as f64 / self.per_fault.len() as f64
    }
}

/// A configured bit-parallel campaign: a compiled engine, a universe of
/// fault groups (each group is one multiple-stuck-at fault — e.g. the
/// correlated copies of one local site across unit instances), an input
/// plan, a drop policy and a lane width.
///
/// The driver splits the universe into small fault blocks scheduled by
/// the work-stealing pool ([`par::run_blocks`]); every block
/// re-generates the same deterministic batch stream, simulates the good
/// machine once per (wide) batch, then replays each of its live faults
/// against the batch, consuming verdicts one 64-lane limb at a time.
/// Results are therefore independent of the worker count, the
/// scheduling order *and* the lane width.
#[derive(Clone, Debug)]
pub struct EngineCampaign<'a> {
    engine: &'a Engine,
    groups: Vec<Vec<StuckAtLine>>,
    plan: InputPlan,
    drop: DropPolicy,
    threads: usize,
    lanes: Lanes,
    range: Option<Range<usize>>,
    skip: Vec<usize>,
    recorder: Option<Arc<Recorder>>,
}

impl<'a> EngineCampaign<'a> {
    /// Starts a campaign over `groups` with exhaustive inputs, no
    /// dropping and all available cores — the engine-room entry the
    /// unified `scdp_campaign::{Scenario, CampaignSpec}` surface drives
    /// after validating the configuration with typed errors.
    #[must_use]
    pub fn over(engine: &'a Engine, groups: Vec<Vec<StuckAtLine>>) -> Self {
        let mut groups = groups;
        for g in &mut groups {
            g.sort_by_key(|f| (f.site.gate, f.site.pin));
        }
        Self {
            engine,
            groups,
            plan: InputPlan::Exhaustive,
            drop: DropPolicy::Never,
            threads: par::default_threads(),
            lanes: Lanes::Auto,
            range: None,
            skip: Vec::new(),
            recorder: None,
        }
    }

    /// Selects the input plan.
    #[must_use]
    pub fn plan(mut self, plan: InputPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Selects the drop policy.
    #[must_use]
    pub fn drop_policy(mut self, drop: DropPolicy) -> Self {
        self.drop = drop;
        self
    }

    /// Caps the worker thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Selects the SIMD lane width (wide words per gate operation).
    /// Results are bit-identical at every width; [`Lanes::Auto`] picks
    /// the widest supported path.
    #[must_use]
    pub fn lanes(mut self, lanes: Lanes) -> Self {
        self.lanes = lanes;
        self
    }

    /// Restricts simulation to the universe subrange `range` — the
    /// shard-scoped iteration of a partitioned campaign. The summary's
    /// `per_fault` then covers only `range`, in universe order; because
    /// every fault replays the same deterministic batch stream
    /// independently, per-fault outcomes are bit-identical to the
    /// corresponding slice of an unrestricted run.
    ///
    /// # Panics
    ///
    /// `run` panics if the range exceeds the universe (campaign
    /// front-ends validate shard plans before reaching this driver).
    #[must_use]
    pub fn fault_range(mut self, range: Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// Marks fault groups as **pre-resolved**: the given indices (into
    /// the universe passed to [`EngineCampaign::over`], before any
    /// [`EngineCampaign::fault_range`] scoping) are excluded from
    /// packing and never simulated. Instead, the driver replays the
    /// batch stream once with an *empty* fault group — the fault-free
    /// baseline probe — and fills each skipped entry of
    /// `per_fault` with a copy of that outcome. For a fault proven to
    /// behave exactly like the fault-free machine (see
    /// `scdp-analyze`'s `PrunedUniverse`), this is bit-identical to
    /// simulating it under every drop policy: the baseline is silent
    /// by construction wherever the good machine is, and a silent
    /// fault is never dropped. Indices outside the scoped range are
    /// ignored, so shard geometry composes with skipping.
    #[must_use]
    pub fn skip_resolved(mut self, skip: Vec<usize>) -> Self {
        self.skip = skip;
        self
    }

    /// Attaches a telemetry recorder. The driver then counts fault
    /// groups, per-fault batch evaluations, dropped faults and
    /// simulated situations under `engine.*` (all thread-count and
    /// shard invariant), plus per-worker busy time under
    /// `engine.busy_ns`.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The universe subrange that will be simulated.
    fn scoped(&self) -> &[Vec<StuckAtLine>] {
        match &self.range {
            None => &self.groups,
            Some(r) => {
                assert!(
                    r.start <= r.end && r.end <= self.groups.len(),
                    "fault range {r:?} exceeds the {}-group universe",
                    self.groups.len()
                );
                &self.groups[r.clone()]
            }
        }
    }

    /// Validates every in-scope fault group against the compiled
    /// netlist — call before [`EngineCampaign::run`] to surface
    /// malformed specs as typed errors instead of feeding them to the
    /// packed evaluator.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found, in universe order.
    pub fn check(&self) -> Result<(), SimError> {
        for group in self.scoped() {
            self.engine.check_faults(group)?;
        }
        Ok(())
    }

    /// Runs the campaign.
    ///
    /// # Panics
    ///
    /// Panics if a fault group names a gate or pin the compiled
    /// netlist does not have — validate with [`EngineCampaign::check`]
    /// first for a typed error (the unified `scdp-campaign` surface
    /// does); silently dropping such lines would produce plausible but
    /// wrong tallies. Also re-raises a worker panic (see
    /// [`EngineCampaign::try_run`] for the typed-error form).
    #[must_use]
    pub fn run(&self) -> CampaignSummary {
        match self.try_run() {
            Ok(summary) => summary,
            Err(e @ SimError::WorkerPanicked { .. }) => panic!("{e}"),
            Err(e) => panic!("invalid fault spec: {e} (validate with EngineCampaign::check)"),
        }
    }

    /// Runs the campaign, surfacing malformed fault specs and worker
    /// panics as typed errors.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] a fault group fails validation with, or
    /// [`SimError::WorkerPanicked`] if a pool worker panicked.
    pub fn try_run(&self) -> Result<CampaignSummary, SimError> {
        self.check()?;
        let scoped = self.scoped();
        let start = self.range.as_ref().map_or(0, |r| r.start);
        let mut skip_mask = vec![false; scoped.len()];
        for &i in &self.skip {
            if let Some(s) = i.checked_sub(start).filter(|&s| s < scoped.len()) {
                skip_mask[s] = true;
            }
        }
        let block = par::auto_block(scoped.len(), self.threads);
        let batch_evals = AtomicU64::new(0);
        // One fault-free probe stands in for every skipped group; its
        // limbs count toward `batch_evals` exactly like a simulated
        // group's, keeping the counter deterministic.
        let probe = [Vec::new()];
        let baseline: Option<FaultOutcome> = skip_mask.contains(&true).then(|| {
            match self.lanes.limbs() {
                1 => self.run_chunk::<1>(&probe, &[false], &batch_evals),
                4 => self.run_chunk::<4>(&probe, &[false], &batch_evals),
                _ => self.run_chunk::<8>(&probe, &[false], &batch_evals),
            }
            .pop()
            .expect("probe chunk yields one outcome")
        });
        let (mut per_fault, stats) = match self.lanes.limbs() {
            1 => par::run_blocks(scoped.len(), self.threads, block, |r| {
                self.run_chunk::<1>(&scoped[r.clone()], &skip_mask[r], &batch_evals)
            })?,
            4 => par::run_blocks(scoped.len(), self.threads, block, |r| {
                self.run_chunk::<4>(&scoped[r.clone()], &skip_mask[r], &batch_evals)
            })?,
            _ => par::run_blocks(scoped.len(), self.threads, block, |r| {
                self.run_chunk::<8>(&scoped[r.clone()], &skip_mask[r], &batch_evals)
            })?,
        };
        if let Some(b) = &baseline {
            for (o, &skipped) in per_fault.iter_mut().zip(&skip_mask) {
                if skipped {
                    *o = b.clone();
                }
            }
        }
        if let Some(rec) = &self.recorder {
            record_campaign_telemetry(
                rec,
                "engine",
                &per_fault,
                batch_evals.load(Ordering::Relaxed),
                &stats,
            );
        }
        let mut tally = TechTally::default();
        let mut simulated = 0u64;
        for f in &per_fault {
            tally += f.tally;
            simulated += f.tally.total();
        }
        Ok(CampaignSummary {
            per_fault,
            tally,
            simulated,
            baseline,
        })
    }

    /// Simulates one block of the fault universe on the calling worker
    /// (PPSFP inner loop, `64 * L` situations per gate operation).
    ///
    /// Wide verdicts are consumed one limb at a time in scalar-batch
    /// order — tallies, drop points and `batch_evals` (limbs tallied,
    /// the scalar path's per-batch count) are lane-width invariant.
    fn run_chunk<const L: usize>(
        &self,
        chunk: &[Vec<StuckAtLine>],
        skip: &[bool],
        batch_evals: &AtomicU64,
    ) -> Vec<FaultOutcome> {
        let engine = self.engine;
        let mut outcomes: Vec<FaultOutcome> = vec![FaultOutcome::default(); chunk.len()];
        let mut live: Vec<usize> = (0..chunk.len())
            .filter(|&k| !skip.get(k).copied().unwrap_or(false))
            .collect();
        let mut good = Vec::new();
        let mut faulty = Vec::new();
        let mut evals = 0u64;
        for wide in self.plan.wide_stream::<L>(engine.input_bits()) {
            if live.is_empty() {
                break;
            }
            engine.eval_wide_into(&wide, &[], &mut good);
            debug_assert!(
                engine.compare_wide(&good, &good, wide.mask).alarm.is_zero(),
                "good machine must be alarm-free"
            );
            let drop = self.drop;
            live.retain(|&k| {
                engine.eval_wide_into(&wide, &chunk[k], &mut faulty);
                let v = engine.compare_wide(&good, &faulty, wide.mask);
                let o = &mut outcomes[k];
                let mut decided = false;
                for limb in 0..wide.limbs {
                    let (cs, cd, ed, eu) = v.limb(limb).counts();
                    evals += 1;
                    o.tally.correct_silent += cs;
                    o.tally.correct_detected += cd;
                    o.tally.error_detected += ed;
                    o.tally.error_undetected += eu;
                    o.detected |= cd + ed > 0;
                    o.escaped |= eu > 0;
                    decided = match drop {
                        DropPolicy::Never => false,
                        DropPolicy::OnDetect => o.detected,
                        DropPolicy::OnEscape => o.escaped,
                    };
                    if decided {
                        o.dropped_after = Some(o.tally.total());
                        break;
                    }
                }
                !decided
            });
        }
        batch_evals.fetch_add(evals, Ordering::Relaxed);
        outcomes
    }
}

/// Flushes one campaign's telemetry into `rec` under the `prefix.*`
/// and `pool.*` namespaces. Shared by the combinational and sequential
/// drivers; one flush per campaign keeps the atomics entirely off the
/// inner loop. The `prefix.*` counters (and the situation histogram)
/// are thread-count, scheduling and lane-width invariant; the `pool.*`
/// counters describe the schedule itself — blocks, steals, per-worker
/// busy time — and are excluded from
/// `TelemetrySnapshot::deterministic_counters`.
pub(crate) fn record_campaign_telemetry(
    rec: &Recorder,
    prefix: &str,
    outcomes: &[FaultOutcome],
    batch_evals: u64,
    stats: &PoolStats,
) {
    let hist = rec.histogram(&format!("{prefix}.fault_situations"));
    let mut dropped = 0u64;
    let mut situations = 0u64;
    for o in outcomes {
        let total = o.tally.total();
        situations += total;
        dropped += u64::from(o.dropped_after.is_some());
        hist.record(total);
    }
    rec.add(&format!("{prefix}.faults"), outcomes.len() as u64);
    rec.add(&format!("{prefix}.fault_batches"), batch_evals);
    rec.add(&format!("{prefix}.faults_dropped"), dropped);
    rec.add(&format!("{prefix}.situations"), situations);
    rec.add(&format!("{prefix}.busy_ns"), stats.busy_ns());
    rec.add("pool.blocks", stats.blocks);
    rec.add("pool.steals", stats.steals);
    for (w, &busy_ns) in stats.worker_busy_ns.iter().enumerate() {
        rec.add(&format!("pool.w{w}.busy_ns"), busy_ns);
    }
}

/// Summary of one gate-level cross-validation campaign.
#[derive(Clone, Debug)]
pub struct XvalReport {
    /// Number of per-instance-local stuck-at sites (each simulated
    /// stuck-at-0 and stuck-at-1).
    pub sites: usize,
    /// Aggregate situation tallies across the whole universe.
    pub tally: TechTally,
}

impl XvalReport {
    /// The paper's coverage metric: fraction of situations that are not
    /// undetected errors.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        self.tally.coverage()
    }
}

fn datapath_coverage(
    dp: &SelfCheckingDatapath,
    plan: InputPlan,
    threads: usize,
    correlated: bool,
) -> XvalReport {
    let engine = Engine::new(&dp.netlist);
    let sites = dp.local_sites();
    let mut groups = Vec::with_capacity(sites.len() * 2);
    for site in &sites {
        for value in [false, true] {
            groups.push(if correlated {
                dp.correlated_fault(*site, value)
            } else {
                dp.nominal_fault(*site, value)
            });
        }
    }
    let summary = EngineCampaign::over(&engine, groups)
        .plan(plan)
        .threads(threads)
        .run();
    XvalReport {
        sites: sites.len(),
        tally: summary.tally,
    }
}

/// Full-tally coverage of a self-checking datapath under **correlated**
/// (shared physical unit) faults — the paper's worst case and the
/// workload of `gate_xval`.
#[must_use]
pub fn correlated_coverage(
    dp: &SelfCheckingDatapath,
    plan: InputPlan,
    threads: usize,
) -> XvalReport {
    datapath_coverage(dp, plan, threads, true)
}

/// Full-tally coverage with the fault confined to the nominal unit —
/// the dedicated-checker allocation (§2.1).
#[must_use]
pub fn dedicated_coverage(
    dp: &SelfCheckingDatapath,
    plan: InputPlan,
    threads: usize,
) -> XvalReport {
    datapath_coverage(dp, plan, threads, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::{Operator, Technique};
    use scdp_netlist::gen::{self_checking, SelfCheckingSpec};

    fn add_dp(width: u32, tech: Technique) -> SelfCheckingDatapath {
        self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: tech,
            width,
        })
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let dp = add_dp(3, Technique::Both);
        let a = correlated_coverage(&dp, InputPlan::Exhaustive, 1);
        let b = correlated_coverage(&dp, InputPlan::Exhaustive, 4);
        assert_eq!(a.tally, b.tally);
        assert_eq!(a.sites, b.sites);
    }

    #[test]
    fn dedicated_allocation_catches_every_observable_error() {
        let dp = add_dp(3, Technique::Tech1);
        let r = dedicated_coverage(&dp, InputPlan::Exhaustive, 2);
        assert_eq!(r.tally.error_undetected, 0);
        assert!(r.tally.error_detected > 0);
    }

    #[test]
    fn correlated_faults_escape_sometimes() {
        let dp = add_dp(3, Technique::Tech1);
        let r = correlated_coverage(&dp, InputPlan::Exhaustive, 2);
        assert!(
            r.tally.error_undetected > 0,
            "shared-unit masking must exist"
        );
        assert!(r.coverage() < 1.0);
    }

    #[test]
    fn dropping_preserves_verdicts_and_saves_work() {
        let dp = add_dp(6, Technique::Both);
        let engine = Engine::new(&dp.netlist);
        let mut groups = Vec::new();
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        let full = EngineCampaign::over(&engine, groups.clone())
            .drop_policy(DropPolicy::Never)
            .threads(2)
            .run();
        let dropped = EngineCampaign::over(&engine, groups)
            .drop_policy(DropPolicy::OnDetect)
            .threads(2)
            .run();
        for (f, d) in full.per_fault.iter().zip(&dropped.per_fault) {
            assert_eq!(
                f.detected, d.detected,
                "dropping must not change the verdict"
            );
        }
        assert!(
            dropped.simulated * 4 < full.simulated,
            "dropping should cut simulated situations substantially \
             ({} vs {})",
            dropped.simulated,
            full.simulated
        );
    }

    #[test]
    fn telemetry_counters_are_thread_invariant() {
        let dp = add_dp(5, Technique::Both);
        let engine = Engine::new(&dp.netlist);
        let mut groups = Vec::new();
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        let run = |threads: usize| {
            let rec = Arc::new(Recorder::new());
            let summary = EngineCampaign::over(&engine, groups.clone())
                .drop_policy(DropPolicy::OnDetect)
                .threads(threads)
                .recorder(Arc::clone(&rec))
                .run();
            (summary, rec.snapshot())
        };
        let (s1, t1) = run(1);
        let (s4, t4) = run(4);
        assert_eq!(t1.deterministic_counters(), t4.deterministic_counters());
        assert_eq!(t1.histograms, t4.histograms);
        assert_eq!(t1.counter("engine.faults"), Some(groups.len() as u64));
        assert_eq!(t1.counter("engine.situations"), Some(s1.simulated));
        assert_eq!(s1.simulated, s4.simulated);
        let dropped = s1
            .per_fault
            .iter()
            .filter(|f| f.dropped_after.is_some())
            .count() as u64;
        assert_eq!(t1.counter("engine.faults_dropped"), Some(dropped));
        assert!(t1.counter("engine.busy_ns").is_some(), "busy time recorded");
        assert!(
            t1.counter("engine.fault_batches").unwrap() > 0,
            "batch evaluations recorded"
        );
    }

    #[test]
    fn lane_width_does_not_change_results_even_when_dropping() {
        let dp = add_dp(5, Technique::Both);
        let engine = Engine::new(&dp.netlist);
        let mut groups = Vec::new();
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        for drop in [
            DropPolicy::Never,
            DropPolicy::OnDetect,
            DropPolicy::OnEscape,
        ] {
            let run = |lanes: Lanes| {
                EngineCampaign::over(&engine, groups.clone())
                    .drop_policy(drop)
                    .threads(2)
                    .lanes(lanes)
                    .run()
            };
            let reference = run(Lanes::L1);
            for lanes in [Lanes::L4, Lanes::L8, Lanes::Auto] {
                let wide = run(lanes);
                assert_eq!(reference.tally, wide.tally, "{drop:?} {lanes:?}");
                assert_eq!(reference.simulated, wide.simulated, "{drop:?} {lanes:?}");
                for (a, b) in reference.per_fault.iter().zip(&wide.per_fault) {
                    assert_eq!(a.tally, b.tally, "{drop:?} {lanes:?}");
                    assert_eq!(a.detected, b.detected);
                    assert_eq!(a.escaped, b.escaped);
                    assert_eq!(a.dropped_after, b.dropped_after, "{drop:?} {lanes:?}");
                }
            }
        }
    }

    /// Skipping a group whose faulty machine *is* the fault-free
    /// machine (here: an empty group) must reproduce the unskipped run
    /// bit-for-bit — per-fault rows, tallies and simulated count — and
    /// expose the baseline probe.
    #[test]
    fn skipping_resolved_groups_is_bit_identical() {
        let dp = add_dp(4, Technique::Both);
        let engine = Engine::new(&dp.netlist);
        let mut groups = vec![Vec::new()];
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        let mid = groups.len() / 2;
        groups.insert(mid, Vec::new());
        for drop in [DropPolicy::Never, DropPolicy::OnDetect] {
            let plain = EngineCampaign::over(&engine, groups.clone())
                .drop_policy(drop)
                .threads(2)
                .run();
            let skipped = EngineCampaign::over(&engine, groups.clone())
                .drop_policy(drop)
                .threads(2)
                .skip_resolved(vec![0, mid])
                .run();
            assert_eq!(plain.per_fault, skipped.per_fault, "{drop:?}");
            assert_eq!(plain.tally, skipped.tally);
            assert_eq!(plain.simulated, skipped.simulated);
            assert!(plain.baseline.is_none());
            let baseline = skipped.baseline.expect("probe ran");
            assert_eq!(baseline, skipped.per_fault[0]);
            assert!(!baseline.detected && !baseline.escaped);
        }
    }

    /// Skip indices address the pre-range universe; out-of-range ones
    /// are ignored, so shard scoping composes with skipping.
    #[test]
    fn skip_indices_compose_with_fault_range() {
        let dp = add_dp(4, Technique::Tech1);
        let engine = Engine::new(&dp.netlist);
        let mut groups = Vec::new();
        for site in dp.local_sites() {
            for value in [false, true] {
                groups.push(dp.correlated_fault(site, value));
            }
        }
        groups.insert(3, Vec::new());
        let range = 2..groups.len().min(8);
        let plain = EngineCampaign::over(&engine, groups.clone())
            .fault_range(range.clone())
            .threads(2)
            .run();
        let skipped = EngineCampaign::over(&engine, groups.clone())
            .fault_range(range)
            .threads(2)
            // 3 is the empty group (in range); 0 is out of range.
            .skip_resolved(vec![0, 3])
            .run();
        assert_eq!(plain.per_fault, skipped.per_fault);
        assert_eq!(plain.simulated, skipped.simulated);
    }

    #[test]
    fn try_run_surfaces_bad_specs_as_typed_errors() {
        let dp = add_dp(3, Technique::Tech1);
        let engine = Engine::new(&dp.netlist);
        let bogus = vec![vec![scdp_netlist::StuckAtLine::new(
            scdp_netlist::StuckSite {
                gate: usize::MAX,
                pin: None,
            },
            true,
        )]];
        let err = EngineCampaign::over(&engine, bogus).try_run().unwrap_err();
        assert!(matches!(err, SimError::GateOutOfRange { .. }));
    }

    #[test]
    fn sampled_campaign_is_reproducible_across_threads() {
        let dp = add_dp(6, Technique::Both);
        let plan = InputPlan::Sampled {
            vectors: 512,
            seed: 0xDA7E,
        };
        let a = correlated_coverage(&dp, plan, 1);
        let b = correlated_coverage(&dp, plan, 3);
        assert_eq!(a.tally, b.tally);
    }
}
