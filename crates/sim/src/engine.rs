//! The levelized bit-parallel gate evaluator.

use crate::batch::InputBatch;
use crate::error::SimError;
use scdp_netlist::{GateKind, Netlist, StuckAtLine};

/// Splats a logic value across all 64 lanes.
#[inline]
fn splat(value: bool) -> u64 {
    if value {
        u64::MAX
    } else {
        0
    }
}

/// A netlist compiled for bit-parallel evaluation.
///
/// Construction copies the gate array into structure-of-arrays form
/// (kind / input-a / input-b as parallel `Vec`s) and resolves the
/// output roles: every bus named `error` is an *alarm* bus, every other
/// output bus is part of the *result*. Netlists are already stored in
/// topological order, so evaluation is one forward pass.
#[derive(Clone, Debug)]
pub struct Engine {
    kinds: Vec<GateKind>,
    a: Vec<u32>,
    b: Vec<u32>,
    input_bits: usize,
    result_nets: Vec<u32>,
    alarm_nets: Vec<u32>,
    name: String,
}

/// Packed verdict of one faulty batch against the good machine, already
/// restricted to the valid lanes.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Lanes whose result-bus values differ from the good machine.
    pub wrong: u64,
    /// Lanes where an alarm net is asserted.
    pub alarm: u64,
    /// Mask of lanes that carry real vectors.
    pub mask: u64,
}

impl BatchOutcome {
    /// Lanes in the `ErrorUndetected` class (wrong result, silent
    /// checks) — the paper's uncovered situations.
    #[must_use]
    pub fn escapes(&self) -> u64 {
        self.wrong & !self.alarm
    }

    /// Situation counts in taxonomy order: `(correct_silent,
    /// correct_detected, error_detected, error_undetected)`.
    #[must_use]
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let wrong = self.wrong & self.mask;
        let alarm = self.alarm & self.mask;
        let eu = (wrong & !alarm).count_ones() as u64;
        let ed = (wrong & alarm).count_ones() as u64;
        let cd = (!wrong & alarm & self.mask).count_ones() as u64;
        let cs = self.mask.count_ones() as u64 - eu - ed - cd;
        (cs, cd, ed, eu)
    }
}

impl Engine {
    /// Compiles `netlist` for packed evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist holds state (Dff cells) — use
    /// [`crate::SeqEngine`] for cycle-accurate evaluation.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        assert!(
            !netlist.is_sequential(),
            "combinational engine cannot evaluate a sequential netlist; use SeqEngine"
        );
        let gates = netlist.gates();
        let mut kinds = Vec::with_capacity(gates.len());
        let mut a = Vec::with_capacity(gates.len());
        let mut b = Vec::with_capacity(gates.len());
        for g in gates {
            kinds.push(g.kind);
            a.push(g.a.map_or(0, |n| n.index() as u32));
            b.push(g.b.map_or(0, |n| n.index() as u32));
        }
        let mut result_nets = Vec::new();
        let mut alarm_nets = Vec::new();
        for (name, bus) in netlist.outputs() {
            let target = if name == "error" {
                &mut alarm_nets
            } else {
                &mut result_nets
            };
            target.extend(bus.iter().map(|n| n.index() as u32));
        }
        Self {
            kinds,
            a,
            b,
            input_bits: netlist.input_bits(),
            result_nets,
            alarm_nets,
            name: netlist.name().to_string(),
        }
    }

    /// The compiled design's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (= gates) in the compiled netlist.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary input bits expected per batch.
    #[must_use]
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Validates a fault list against the compiled netlist: every line
    /// must name an existing gate and, for pin faults, an input pin the
    /// gate actually has. Campaign drivers call this once per fault
    /// group *before* simulation so a malformed spec becomes a typed
    /// error instead of aborting a running (possibly sharded) campaign.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] found, in fault-list order.
    pub fn check_faults(&self, faults: &[StuckAtLine]) -> Result<(), SimError> {
        check_lines(&self.kinds, faults)
    }

    /// Evaluates one packed batch under `faults` into `values` (one
    /// word per net, reused across calls to avoid allocation).
    ///
    /// `faults` must be sorted by gate index (fault groups produced by
    /// [`crate::EngineCampaign`] are; assert-checked in debug builds).
    /// The fault-free fast path costs one table-dispatched bitwise op
    /// per gate per 64 vectors; faulted gates take a slow path that
    /// applies pin overrides before and the stem override after the
    /// gate function.
    ///
    /// # Panics
    ///
    /// Panics if the batch width does not match the netlist.
    pub fn eval_batch_into(
        &self,
        batch: &InputBatch,
        faults: &[StuckAtLine],
        values: &mut Vec<u64>,
    ) {
        assert_eq!(
            batch.bits.len(),
            self.input_bits,
            "input bit count mismatch"
        );
        debug_assert!(
            faults.windows(2).all(|w| w[0].site.gate <= w[1].site.gate),
            "fault list must be sorted by gate"
        );
        let n = self.kinds.len();
        values.clear();
        values.resize(n, 0);
        let mut next_input = 0usize;
        let mut fi = 0usize;
        let mut fault_gate = faults.first().map_or(usize::MAX, |f| f.site.gate);
        for i in 0..n {
            let out = if i == fault_gate {
                // Slow path: apply every fault attached to this gate.
                let mut pin0 = None;
                let mut pin1 = None;
                let mut stem = None;
                while fi < faults.len() && faults[fi].site.gate == i {
                    match faults[fi].site.pin {
                        Some(0) => pin0 = Some(faults[fi].value),
                        Some(1) => pin1 = Some(faults[fi].value),
                        // Rejected by `check_faults`; ignored here so a
                        // line smuggled past validation through the raw
                        // batch API cannot abort a campaign.
                        Some(_) => {}
                        None => stem = Some(faults[fi].value),
                    }
                    fi += 1;
                }
                fault_gate = faults.get(fi).map_or(usize::MAX, |f| f.site.gate);
                let read = |pin: Option<bool>, net: u32, values: &[u64]| -> u64 {
                    pin.map_or(values[net as usize], splat)
                };
                let out = match self.kinds[i] {
                    GateKind::Input => {
                        let v = batch.bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => splat(c),
                    GateKind::Not => !read(pin0, self.a[i], values),
                    GateKind::Buf => read(pin0, self.a[i], values),
                    kind => {
                        let va = read(pin0, self.a[i], values);
                        let vb = read(pin1, self.b[i], values);
                        apply2(kind, va, vb)
                    }
                };
                stem.map_or(out, splat)
            } else {
                match self.kinds[i] {
                    GateKind::Input => {
                        let v = batch.bits[next_input];
                        next_input += 1;
                        v
                    }
                    GateKind::Const(c) => splat(c),
                    GateKind::Not => !values[self.a[i] as usize],
                    GateKind::Buf => values[self.a[i] as usize],
                    kind => apply2(kind, values[self.a[i] as usize], values[self.b[i] as usize]),
                }
            };
            // Lanes beyond batch.len hold junk; harmless, masked later.
            values[i] = out;
        }
    }

    /// Convenience wrapper allocating a fresh value vector.
    #[must_use]
    pub fn eval_batch(&self, batch: &InputBatch, faults: &[StuckAtLine]) -> Vec<u64> {
        let mut values = Vec::new();
        self.eval_batch_into(batch, faults, &mut values);
        values
    }

    /// Compares a faulty evaluation against the good machine over one
    /// batch, producing the packed taxonomy masks.
    #[must_use]
    pub fn compare(&self, good: &[u64], faulty: &[u64], mask: u64) -> BatchOutcome {
        let mut wrong = 0u64;
        for &net in &self.result_nets {
            wrong |= good[net as usize] ^ faulty[net as usize];
        }
        let mut alarm = 0u64;
        for &net in &self.alarm_nets {
            alarm |= faulty[net as usize];
        }
        BatchOutcome {
            wrong: wrong & mask,
            alarm: alarm & mask,
            mask,
        }
    }
}

/// The shared fault-list validation of both engines.
pub(crate) fn check_lines(kinds: &[GateKind], faults: &[StuckAtLine]) -> Result<(), SimError> {
    for f in faults {
        let gate = f.site.gate;
        let Some(kind) = kinds.get(gate) else {
            return Err(SimError::GateOutOfRange {
                gate,
                gates: kinds.len(),
            });
        };
        if let Some(pin) = f.site.pin {
            let pins = kind.pins();
            if pin >= pins {
                return Err(SimError::PinOutOfRange { gate, pin, pins });
            }
        }
    }
    Ok(())
}

#[inline]
fn apply2(kind: GateKind, a: u64, b: u64) -> u64 {
    match kind {
        GateKind::And => a & b,
        GateKind::Or => a | b,
        GateKind::Xor => a ^ b,
        GateKind::Nand => !(a & b),
        GateKind::Nor => !(a | b),
        GateKind::Xnor => !(a ^ b),
        _ => unreachable!("two-input kinds only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::InputPlan;
    use scdp_netlist::{NetlistBuilder, StuckSite};

    fn xor_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("xor");
        let x = b.input_bus("x", 2);
        let y = b.xor(x[0], x[1]);
        b.output("y", &[y]);
        b.finish()
    }

    #[test]
    fn packed_matches_scalar_on_xor() {
        let nl = xor_netlist();
        let engine = Engine::new(&nl);
        for batch in InputPlan::Exhaustive.stream(2) {
            let packed = engine.eval_batch(&batch, &[]);
            for lane in 0..batch.len {
                let scalar = nl.eval_nets(&batch.lane_bits(lane), &[]);
                for (net, word) in packed.iter().enumerate() {
                    assert_eq!(
                        (word >> lane) & 1 != 0,
                        scalar[net],
                        "net {net} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn stem_and_pin_faults_match_scalar() {
        let nl = xor_netlist();
        let engine = Engine::new(&nl);
        let cases = [
            StuckAtLine::new(StuckSite { gate: 2, pin: None }, true),
            StuckAtLine::new(
                StuckSite {
                    gate: 2,
                    pin: Some(1),
                },
                false,
            ),
            StuckAtLine::new(StuckSite { gate: 0, pin: None }, true),
        ];
        for fault in cases {
            for batch in InputPlan::Exhaustive.stream(2) {
                let packed = engine.eval_batch(&batch, &[fault]);
                for lane in 0..batch.len {
                    let scalar = nl.eval_nets(&batch.lane_bits(lane), &[fault]);
                    for (net, word) in packed.iter().enumerate() {
                        assert_eq!(
                            (word >> lane) & 1 != 0,
                            scalar[net],
                            "{fault:?} net {net} lane {lane}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn outcome_counts_partition_the_mask() {
        let o = BatchOutcome {
            wrong: 0b1100,
            alarm: 0b1010,
            mask: 0b1111,
        };
        let (cs, cd, ed, eu) = o.counts();
        assert_eq!((cs, cd, ed, eu), (1, 1, 1, 1));
        assert_eq!(o.escapes(), 0b0100);
    }

    #[test]
    fn error_bus_is_alarm_role() {
        let mut b = NetlistBuilder::new("roles");
        let x = b.input_bus("x", 1);
        b.output("ris", &[x[0]]);
        b.output("error", &[x[0]]);
        let engine = Engine::new(&b.finish());
        assert_eq!(engine.result_nets, vec![0]);
        assert_eq!(engine.alarm_nets, vec![0]);
    }
}
