//! Shared deductive-pruning plumbing for the gate-level spec shapes.
//!
//! `.prune(true)` must leave every report *bit-identical* to the
//! unpruned run, so the integration mirrors [`crate::collapse`]: the
//! static analysis only decides which engine fault groups can skip the
//! packing loop, never what their outcomes are allowed to be. Two
//! deductions are drawn, both from `scdp-analyze`:
//!
//! 1. **Untestability proofs** ([`scdp_analyze::PrunedUniverse`]) — a
//!    group proven to behave like the fault-free machine on every
//!    vector takes the fault-free *baseline probe* outcome verbatim.
//!    The engine computes that probe with the exact same deterministic
//!    batch stream a simulated group would see, so the settled row
//!    equals what simulation would have produced, bit for bit. Valid
//!    on combinational and sequential netlists alike.
//! 2. **Dominance deferral** ([`scdp_analyze::DominatorChains`]) — a
//!    singleton line whose dominator chain ends in a distinct root
//!    *defers*: it is skipped in the first pass, and settled with the
//!    baseline outcome only when the root's simulated outcome turned
//!    out completely silent and undropped (dominance guarantees the
//!    deferred line perturbs at most where its root does). Deferred
//!    lines whose root did anything else are re-simulated in a second
//!    pass — bit-safe because every group's outcome is independent of
//!    its neighbours. Only legal on combinational netlists and for
//!    singleton groups; multi-line groups and sequential campaigns get
//!    untestability pruning only.
//!
//! Shard geometry is computed on the *original* universe before any of
//! this, so prune-then-shard and shard-then-prune coincide and the plan
//! fingerprint is unchanged.

use scdp_analyze::{CollapsedUniverse, DominatorChains, PrunedUniverse};
use scdp_netlist::{Netlist, StuckAtLine};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// One stuck line as a hashable identity (`scdp-analyze` keeps its own
/// key private; the triple is equivalent).
type LineKey = (usize, Option<u8>, bool);

fn key_of(line: &StuckAtLine) -> LineKey {
    (line.site.gate, line.site.pin, line.value)
}

/// Which engine fault groups one (possibly sharded, possibly collapsed)
/// pruned run may settle without simulating.
///
/// All indices are *absolute* positions in the engine's group list —
/// the same coordinate space `EngineCampaign::skip_resolved` expects,
/// so they compose with `fault_range` unchanged.
pub(crate) struct PrunePlan {
    /// Groups with an untestability proof: their outcome is the
    /// fault-free baseline by construction.
    pub untestable: Vec<usize>,
    /// `(deferred, root)` pairs: `deferred` is skipped in pass 1 and
    /// settled with the baseline exactly when `root`'s pass-1 outcome
    /// equals the (silent, undropped) baseline; re-simulated otherwise.
    pub deferred: Vec<(usize, usize)>,
}

impl PrunePlan {
    /// Analyses the `scope` slice of `groups` (the engine's group list)
    /// against `netlist`.
    pub(crate) fn build(
        netlist: &Netlist,
        groups: &[Vec<StuckAtLine>],
        scope: Range<usize>,
    ) -> PrunePlan {
        let scoped = &groups[scope.clone()];
        let pu = PrunedUniverse::build(netlist, scoped);
        let untestable: Vec<usize> = pu
            .untestable_indices()
            .iter()
            .map(|&i| i + scope.start)
            .collect();
        let mut deferred = Vec::new();
        if !netlist.is_sequential() {
            // Units: singleton groups by line identity. First occurrence
            // wins so duplicated lines defer to one shared root slot.
            let mut unit_of: HashMap<LineKey, usize> = HashMap::new();
            for (i, g) in scoped.iter().enumerate() {
                if let [line] = g[..] {
                    unit_of.entry(key_of(&line)).or_insert(i + scope.start);
                }
            }
            let cu = CollapsedUniverse::build(netlist);
            let dc = DominatorChains::build(netlist, &cu);
            let untestable_set: HashSet<usize> = untestable.iter().copied().collect();
            let mut candidates = Vec::new();
            let mut candidate_set = HashSet::new();
            for (i, g) in scoped.iter().enumerate() {
                let idx = i + scope.start;
                if untestable_set.contains(&idx) {
                    continue;
                }
                let [line] = g[..] else { continue };
                let Some(root) = dc.deferrable_root(line) else {
                    continue;
                };
                // The root must itself be simulated in this scope for
                // its outcome to exist in pass 1.
                let Some(&anc) = unit_of.get(&key_of(&root)) else {
                    continue;
                };
                if anc == idx {
                    continue;
                }
                candidates.push((idx, anc));
                candidate_set.insert(idx);
            }
            // Roots are fixpoints of the chain relation, but a root
            // could still be a *candidate* through a duplicated line;
            // settling must read simulated (or untestable-settled)
            // outcomes only, so drop pairs whose root is itself
            // deferred.
            deferred = candidates
                .into_iter()
                .filter(|&(_, anc)| !candidate_set.contains(&anc))
                .collect();
        }
        PrunePlan {
            untestable,
            deferred,
        }
    }

    /// Pass-1 skip list: untestable groups plus deferred candidates.
    pub(crate) fn skip(&self) -> Vec<usize> {
        let mut s = self.untestable.clone();
        s.extend(self.deferred.iter().map(|&(u, _)| u));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_netlist::NetlistBuilder;

    /// A tiny circuit with a constant-killed AND leg and a dominated
    /// input pin: `y = (a & const0) | (b & c)`.
    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny_prune");
        let ins = b.input_bus("in", 3);
        let (a, bb, c) = (ins[0], ins[1], ins[2]);
        let z = b.constant(false);
        let dead = b.and(a, z);
        let live = b.and(bb, c);
        let y = b.or(dead, live);
        b.output("y", &[y]);
        b.finish()
    }

    #[test]
    fn plan_finds_untestable_and_deferred_units() {
        let n = tiny();
        let groups: Vec<Vec<StuckAtLine>> = n.fault_lines().iter().map(|&l| vec![l]).collect();
        let plan = PrunePlan::build(&n, &groups, 0..groups.len());
        assert!(!plan.untestable.is_empty(), "dead AND leg must be proven");
        assert!(!plan.deferred.is_empty(), "AND pins must defer to stems");
        let untestable: HashSet<usize> = plan.untestable.iter().copied().collect();
        for &(u, anc) in &plan.deferred {
            assert!(!untestable.contains(&u), "deferred units are live");
            assert!(
                plan.deferred.iter().all(|&(v, _)| v != anc),
                "roots are never themselves deferred"
            );
            assert_ne!(u, anc);
        }
        let skip = plan.skip();
        assert_eq!(skip.len(), plan.untestable.len() + plan.deferred.len());
    }

    #[test]
    fn scoped_plans_match_the_full_plan_on_the_overlap() {
        let n = tiny();
        let groups: Vec<Vec<StuckAtLine>> = n.fault_lines().iter().map(|&l| vec![l]).collect();
        let full = PrunePlan::build(&n, &groups, 0..groups.len());
        let scope = 2..groups.len() - 2;
        let part = PrunePlan::build(&n, &groups, scope.clone());
        let full_untestable: HashSet<usize> = full.untestable.iter().copied().collect();
        for &i in &part.untestable {
            assert!(scope.contains(&i));
            assert!(full_untestable.contains(&i), "proofs are per-group");
        }
        // A scoped plan may defer less (roots outside the scope cannot
        // settle anything) but never introduces out-of-scope indices.
        for &(u, anc) in &part.deferred {
            assert!(scope.contains(&u) && scope.contains(&anc));
        }
    }

    #[test]
    fn sequential_netlists_get_untestability_only() {
        let mut b = NetlistBuilder::new("seq_prune");
        let a = b.input_bus("in", 1)[0];
        let z = b.constant(false);
        let q = b.dff();
        let dead = b.and(a, z);
        let y = b.or(q, dead);
        b.connect_dff(q, y);
        b.output("y", &[y]);
        let n = b.finish();
        let groups: Vec<Vec<StuckAtLine>> = n.fault_lines().iter().map(|&l| vec![l]).collect();
        let plan = PrunePlan::build(&n, &groups, 0..groups.len());
        assert!(
            plan.deferred.is_empty(),
            "dominance needs a combinational netlist"
        );
        assert!(!plan.untestable.is_empty());
    }
}
