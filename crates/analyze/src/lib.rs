//! Static netlist analysis for self-checking data-paths.
//!
//! Two layers over [`scdp_netlist::Netlist`], both pure structural
//! analysis (no simulation):
//!
//! * [`collapse`] — classic stuck-at fault-equivalence collapsing.
//!   [`CollapsedUniverse`] maps every [`scdp_netlist::StuckAtLine`] to
//!   an equivalence-class representative whose *complete faulty
//!   function* matches, so campaign engines can simulate
//!   representatives only and fan verdicts back out bit-identically
//!   (`scdp-campaign`'s `.collapse(true)`).
//! * [`lint()`] — structural sanity checks that catch elaboration bugs
//!   (floating nets, combinational cycles, dead logic, alarms that can
//!   never fire or never observe a region) before any vector runs;
//!   surfaced on the CLI as `scdp lint`.

pub mod collapse;
pub mod lint;

pub use collapse::{CollapsedGroups, CollapsedUniverse};
pub use lint::{lint, Diagnostic, LintOptions, LintReport, Severity};
