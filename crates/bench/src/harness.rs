//! A tiny self-contained benchmark harness.
//!
//! The build environment is offline, so Criterion is not available; the
//! `[[bench]]` targets instead use this harness (`harness = false`). It
//! keeps the parts the repo actually relies on — warmup, repeated
//! sampling, median/min statistics, throughput, and a machine-readable
//! `BENCH_<name>.json` artifact in the current directory so speedups
//! land in the benchmark trajectory.
//!
//! Set `BENCH_QUICK=1` to divide sample counts by 5 (CI smoke mode).

use std::hint::black_box;
use std::time::Instant;

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct Record {
    /// Benchmark id within the group.
    pub id: String,
    /// Median wall time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Number of measured iterations.
    pub samples: usize,
    /// Work items per iteration (0 when not meaningful).
    pub elements: u64,
}

impl Record {
    /// Throughput in million elements per second (`None` if no element
    /// count was declared).
    #[must_use]
    pub fn meps(&self) -> Option<f64> {
        if self.elements == 0 {
            return None;
        }
        Some(self.elements as f64 / self.median_ns * 1e3)
    }
}

/// A named group of benchmarks, written to `BENCH_<name>.json` on
/// [`Bench::finish`].
#[derive(Debug)]
pub struct Bench {
    name: String,
    records: Vec<Record>,
    metrics: Vec<(String, f64)>,
}

impl Bench {
    /// Starts a benchmark group.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        eprintln!("== bench group {name} ==");
        Self {
            name,
            records: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Effective sample count after `BENCH_QUICK` scaling.
    #[must_use]
    pub fn scaled(samples: usize) -> usize {
        if std::env::var_os("BENCH_QUICK").is_some() {
            (samples / 5).max(1)
        } else {
            samples.max(1)
        }
    }

    /// Measures `f` over `samples` iterations (after one warmup call)
    /// and records the median/min time. Returns the median in ns.
    pub fn sample<R>(&mut self, id: &str, samples: usize, mut f: impl FnMut() -> R) -> f64 {
        self.sample_elements(id, samples, 0, &mut f)
    }

    /// Like [`Bench::sample`], declaring `elements` processed per
    /// iteration so a throughput is reported.
    pub fn sample_elements<R>(
        &mut self,
        id: &str,
        samples: usize,
        elements: u64,
        f: &mut impl FnMut() -> R,
    ) -> f64 {
        let samples = Self::scaled(samples);
        black_box(f()); // warmup
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_nanos() as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let min = times[0];
        let rec = Record {
            id: id.to_string(),
            median_ns: median,
            min_ns: min,
            samples,
            elements,
        };
        match rec.meps() {
            Some(m) => eprintln!("{id:<40} {:>12.1} ns/iter  {m:>10.2} Melem/s", median),
            None => eprintln!("{id:<40} {:>12.1} ns/iter", median),
        }
        self.records.push(rec);
        median
    }

    /// The median of a previously recorded id (for speedup reporting).
    #[must_use]
    pub fn median_of(&self, id: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
    }

    /// Records a derived scalar metric (e.g. a speedup ratio) emitted in
    /// the JSON's `metrics` array, separate from timed samples.
    pub fn metric(&mut self, id: &str, value: f64) {
        eprintln!("{id:<40} {value:>12.2}");
        self.metrics.push((id.to_string(), value));
    }

    /// The directory benchmark artifacts land in: `$BENCH_DIR` if set,
    /// otherwise the workspace root (so the trajectory is invocation-
    /// directory independent).
    #[must_use]
    pub fn artifact_dir() -> String {
        std::env::var("BENCH_DIR")
            .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string())
    }

    /// Writes `BENCH_<name>.json` into [`Bench::artifact_dir`] and
    /// prints the summary line.
    pub fn finish(self) {
        let mut json = String::new();
        json.push_str(&format!("{{\"bench\":\"{}\",\"results\":[", self.name));
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"id\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"elements\":{}}}",
                r.id, r.median_ns, r.min_ns, r.samples, r.elements
            ));
        }
        json.push_str("],\"metrics\":[");
        for (i, (id, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("{{\"id\":\"{id}\",\"value\":{value:.3}}}"));
        }
        json.push_str("]}\n");
        let path = format!("{}/BENCH_{}.json", Self::artifact_dir(), self.name);
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut b = Bench::new("harness_selftest");
        let m = b.sample_elements("noop", 5, 64, &mut || 1 + 1);
        assert!(m >= 0.0);
        assert_eq!(b.records.len(), 1);
        assert!(b.records[0].meps().is_some());
        assert_eq!(b.median_of("noop"), Some(b.records[0].median_ns));
        assert_eq!(b.median_of("missing"), None);
        // finish() is deliberately not called: the unit test must not
        // write a BENCH_*.json artifact into the workspace.
    }

    #[test]
    fn quick_scaling_floors_at_one() {
        assert!(Bench::scaled(0) >= 1);
    }
}
