//! Fault models for self-checking data-path analysis.
//!
//! This crate defines the fault abstractions used throughout the `scdp`
//! workspace, reproducing the fault model of Bolchini et al.,
//! *Reliable System Specification for Self-Checking Data-Paths* (DATE 2005):
//!
//! * the **single functional-unit failure** model — any number of physical
//!   faults cause exactly one functional unit (adder, multiplier, divider,
//!   …) to compute incorrectly, manifesting as an arbitrary number of bit
//!   errors on that unit's result;
//! * its concrete evaluation form, the **cell truth-table fault**: the
//!   paper evaluates coverage "at the functional level (i.e. the faulty
//!   functional unit is the single full-adder in the chain composing the
//!   n-bit adder)". A cell fault forces one output entry of a 1-bit cell's
//!   truth table to a fixed value. A full adder has 8 rows × 2 outputs × 2
//!   polarities = 32 faults, the paper's `num_faults_1bit = 32`;
//! * the gate-level **stuck-at fault** used by the structural
//!   (`scdp-netlist`) cross-validation.
//!
//! # Example
//!
//! ```
//! use scdp_fault::{CellKind, CellFault, UnitFault};
//!
//! // Enumerate the paper's 32 single-full-adder faults.
//! let faults: Vec<CellFault> = CellFault::enumerate(CellKind::FullAdder).collect();
//! assert_eq!(faults.len(), 32);
//!
//! // Place one of them at bit position 3 of an n-bit unit.
//! let unit_fault = UnitFault::new(3, faults[0]);
//! assert_eq!(unit_fault.position(), 3);
//! ```

#![warn(missing_docs)]

mod cell;
mod fa_gate;
mod stuck;
mod universe;

pub use cell::{CellFault, CellKind};
pub use fa_gate::{fa_golden, FaGateFault, FaSite};
pub use stuck::StuckAt;
pub use universe::{FaultUniverse, SituationCount, UnitFault};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_fault_count_matches_paper() {
        assert_eq!(CellFault::enumerate(CellKind::FullAdder).count(), 32);
    }

    #[test]
    fn half_adder_fault_count() {
        // 4 rows x 2 outputs x 2 polarities.
        assert_eq!(CellFault::enumerate(CellKind::HalfAdder).count(), 16);
    }

    #[test]
    fn and_fault_count() {
        // 4 rows x 1 output x 2 polarities.
        assert_eq!(CellFault::enumerate(CellKind::And2).count(), 8);
    }
}
