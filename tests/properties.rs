//! Randomized property tests over the core invariants of the
//! reproduction.
//!
//! The offline build environment has no `proptest`, so properties are
//! exercised with deterministic seeded sweeps from `scdp-rng`: each
//! test draws a few hundred random cases from a fixed xoshiro stream,
//! which keeps failures reproducible (the failing case prints its
//! inputs via the assertion message).

use scdp::arith::{ArrayMultiplier, RestoringDivider, RippleCarryAdder, Word};
use scdp::core::{checked_add, checked_mul, checked_sub, NativeDataPath};
use scdp::netlist::gen as netgen;
use scdp::rng::{Rng, Xoshiro256StarStar};
use scdp::{sck, Technique};

fn rng(tag: u64) -> Xoshiro256StarStar {
    Xoshiro256StarStar::from_seed(0x5CD9_0000 ^ tag)
}

fn word(rng: &mut impl Rng, width: u32) -> Word {
    Word::new(width, rng.next_u64())
}

/// Functional units match golden wrapping arithmetic at any width.
#[test]
fn units_match_golden() {
    let mut rng = rng(1);
    for _ in 0..300 {
        let width = 1 + rng.gen_range(16) as u32;
        let a = word(&mut rng, width);
        let b = word(&mut rng, width);
        let adder = RippleCarryAdder::new(width);
        assert_eq!(
            adder.add(a, b, None),
            a.wrapping_add(b),
            "{width} {a:?}+{b:?}"
        );
        assert_eq!(
            adder.sub(a, b, None),
            a.wrapping_sub(b),
            "{width} {a:?}-{b:?}"
        );
        let mult = ArrayMultiplier::new(width);
        assert_eq!(
            mult.mul(a, b, None),
            a.wrapping_mul(b),
            "{width} {a:?}*{b:?}"
        );
        if b.bits() != 0 {
            let div = RestoringDivider::new(width);
            let out = div.div_rem(a, b, None).unwrap();
            let (q, r) = a.wrapping_div_rem(b);
            assert_eq!(out.quotient, q, "{width} {a:?}/{b:?}");
            assert_eq!(out.remainder, r, "{width} {a:?}%{b:?}");
        }
    }
}

/// Inverse-operation identities hold exactly under wrapping arithmetic —
/// the foundation that makes the checks alarm-free on healthy hardware,
/// even across overflow.
#[test]
fn no_false_alarms() {
    let mut rng = rng(2);
    for _ in 0..300 {
        let width = 1 + rng.gen_range(16) as u32;
        let a = word(&mut rng, width);
        let b = word(&mut rng, width);
        let mut dp = NativeDataPath::new();
        for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            assert!(
                !checked_add(&mut dp, tech, a, b).error,
                "{tech} {a:?}+{b:?}"
            );
            assert!(
                !checked_sub(&mut dp, tech, a, b).error,
                "{tech} {a:?}-{b:?}"
            );
            assert!(
                !checked_mul(&mut dp, tech, a, b).error,
                "{tech} {a:?}*{b:?}"
            );
        }
    }
}

/// The Sck type is value-transparent over whole expression trees.
#[test]
fn sck_transparent() {
    let mut rng = rng(3);
    for _ in 0..300 {
        let (a, b, c) = (
            rng.next_u64() as i32,
            rng.next_u64() as i32,
            rng.next_u64() as i32,
        );
        let plain = a.wrapping_mul(b).wrapping_add(c).wrapping_sub(b);
        let checked = (sck(a) * sck(b) + sck(c)) - sck(b);
        assert_eq!(checked.value(), plain, "{a} {b} {c}");
        assert!(!checked.error(), "{a} {b} {c}");
    }
}

/// Sck division matches Rust semantics for non-zero divisors and flags
/// zero divisors instead of panicking.
#[test]
fn sck_division() {
    let mut rng = rng(4);
    for case in 0..300 {
        let a = rng.next_u64() as i32;
        let b = if case % 10 == 0 {
            0
        } else {
            rng.next_u64() as i32
        };
        let q = sck(a) / sck(b);
        let r = sck(a) % sck(b);
        if b == 0 {
            assert!(q.error());
            assert!(r.error());
        } else {
            assert_eq!(q.value(), a.wrapping_div(b), "{a}/{b}");
            assert_eq!(r.value(), a.wrapping_rem(b), "{a}%{b}");
            assert!(!q.error());
        }
    }
}

/// Generated netlists are equivalent to the functional units on random
/// vectors (RCA, CLA, carry-save, multiplier, divider).
#[test]
fn netlists_match_golden() {
    let mut rng = rng(5);
    let rca = netgen::rca(8);
    let cla = netgen::cla(8);
    let csa = netgen::csa(8);
    let mult = netgen::array_mult(8);
    let div = netgen::restoring_divider(8);
    for _ in 0..200 {
        let a = word(&mut rng, 8);
        let b = word(&mut rng, 8);
        assert_eq!(rca.eval_words(&[a, b], &[])[0], a.wrapping_add(b));
        assert_eq!(cla.eval_words(&[a, b], &[])[0], a.wrapping_add(b));
        assert_eq!(csa.eval_words(&[a, b], &[])[0], a.wrapping_add(b));
        assert_eq!(mult.eval_words(&[a, b], &[])[0], a.wrapping_mul(b));
        if b.bits() != 0 {
            let out = div.eval_words(&[a, b], &[]);
            assert_eq!(out[0].bits(), a.bits() / b.bits());
            assert_eq!(out[1].bits(), a.bits() % b.bits());
        }
    }
}

/// Any single injected adder fault either leaves the result correct or
/// (with a dedicated checker) raises the error — exhaustive detection,
/// randomly probed.
#[test]
fn dedicated_checker_never_misses() {
    use scdp::core::{Allocation, FaultSite, FaultyDataPath};
    use scdp::fault::{FaGateFault, FaSite};
    let mut rng = rng(6);
    for _ in 0..300 {
        let pos = rng.gen_range(8) as usize;
        let site = FaSite::ALL[rng.gen_range(FaSite::ALL.len() as u64) as usize];
        let stuck = rng.gen_bool();
        let a = word(&mut rng, 8);
        let b = word(&mut rng, 8);
        let fault = FaultSite::adder_gate(pos, FaGateFault::new(site, stuck));
        let mut dp = FaultyDataPath::new(8, fault, Allocation::Dedicated);
        let c = checked_add(&mut dp, Technique::Tech1, a, b);
        if c.value != a.wrapping_add(b) {
            assert!(c.error, "{pos} {site:?} sa{} {a:?}+{b:?}", u8::from(stuck));
        }
    }
}

/// The error bit is sticky: once set, any chain of operations keeps it
/// set.
#[test]
fn error_bit_is_sticky() {
    use scdp::core::Sck;
    let mut rng = rng(7);
    for _ in 0..100 {
        // Manufacture a poisoned value via division by zero.
        let mut v: Sck<i32> = sck(7) / sck(0);
        assert!(v.error());
        let chain = 1 + rng.gen_range(20);
        for _ in 0..chain {
            let rhs = sck((rng.next_u64() as i32) | 1); // avoid 0 divisors
            v = match rng.gen_range(4) {
                0 => v + rhs,
                1 => v - rhs,
                2 => v * rhs,
                _ => v / rhs,
            };
        }
        assert!(v.error(), "stickiness violated");
    }
}

/// The bit-parallel engine agrees with scalar evaluation on the
/// generated self-checking datapaths (umbrella-level smoke; the full
/// random-netlist equivalence property lives in `scdp-sim`).
#[test]
fn engine_matches_scalar_on_datapaths() {
    use scdp::core::Operator;
    use scdp::netlist::gen::{self_checking, SelfCheckingSpec};
    use scdp::sim::{Engine, InputPlan};
    let mut rng = rng(8);
    for op in [Operator::Add, Operator::Sub, Operator::Mul] {
        let dp = self_checking(SelfCheckingSpec {
            op,
            technique: Technique::Both,
            width: 3,
        });
        let engine = Engine::new(&dp.netlist);
        let sites = dp.local_sites();
        for _ in 0..12 {
            let site = sites[rng.gen_range(sites.len() as u64) as usize];
            let faults = dp.correlated_fault(site, rng.gen_bool());
            for batch in InputPlan::Exhaustive.stream(engine.input_bits()) {
                let packed = engine.eval_batch(&batch, &faults);
                for lane in (0..batch.len).step_by(7) {
                    let scalar = dp.netlist.eval_nets(&batch.lane_bits(lane), &faults);
                    for (net, word) in packed.iter().enumerate() {
                        assert_eq!(
                            (word >> lane) & 1 != 0,
                            scalar[net],
                            "{op:?} {site:?} net {net} lane {lane}"
                        );
                    }
                }
            }
        }
    }
}
