//! Fault-coverage campaign engine for self-checking data-paths.
//!
//! Reproduces §4 of Bolchini et al. (DATE 2005): exhaustive (and, where
//! the space is too large, Monte-Carlo) evaluation of the fault coverage
//! achieved by the Table 1 overloading techniques when the *same* faulty
//! functional unit executes both the nominal operation and its checking
//! operations (the worst case), or when the checker runs on a dedicated
//! unit (the 100%-coverage case).
//!
//! A **fault situation** is a `(fault, input combination)` pair. For each
//! situation the engine classifies, per technique:
//!
//! * `CorrectSilent` — result correct, no alarm;
//! * `CorrectDetected` — result correct but the check fired (the paper's
//!   prized "fault detection even when the produced result is correct");
//! * `ErrorDetected` — result wrong, alarm raised;
//! * `ErrorUndetected` — result wrong, checks passed (situation (2b) of
//!   §4, the coverage loss).
//!
//! Coverage = 1 − undetected / total, exactly the paper's definition
//! ("the number of times the methodology guarantees that the result is
//! either correct or an error signal is raised").
//!
//! This crate is the *functional backend* of the unified campaign
//! surface: new code should construct campaigns through
//! `scdp_campaign::{Scenario, CampaignSpec}`, which adds typed
//! validation errors and gate-level cross-validation on the same
//! scenario. [`CampaignBuilder::over`] is the engine-room entry that
//! surface drives.
//!
//! # Example
//!
//! ```
//! use scdp_coverage::{AdderFaultModel, CampaignBuilder, OperatorKind};
//! use scdp_core::Allocation;
//!
//! // Table 2, first row: 1-bit ripple-carry adder, worst case.
//! let result = CampaignBuilder::over(OperatorKind::Add, 1)
//!     .adder_model(AdderFaultModel::Gate)
//!     .allocation(Allocation::SingleUnit)
//!     .run();
//! assert_eq!(result.total_situations(), 128);
//! ```

#![warn(missing_docs)]

mod campaign;
mod ops;
mod report;
mod space;
mod verdict;

pub use campaign::{AdderFaultModel, CampaignBuilder, CampaignResult, OperatorKind};
pub use ops::{classify_add, classify_div, classify_mul, classify_sub, DivFaultSite, TriVerdict};
pub use report::{format_percent, table2_row, Table2Row};
pub use space::{InputSpace, PairStream};
pub use verdict::{Outcome, Tally, TechIndex, TechTally};
