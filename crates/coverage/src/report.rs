//! Paper-style report formatting.

use crate::campaign::CampaignResult;
use crate::verdict::TechIndex;
use std::fmt;

/// Formats a fraction as a percentage with two decimals, the paper's
/// table style (e.g. `97.25%`).
#[must_use]
pub fn format_percent(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// One row of the paper's Table 2 (experimental results for operator `+`).
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Operand width in bits.
    pub bits: u32,
    /// Number of fault situations evaluated.
    pub situations: u64,
    /// Coverage per technique column (Tech1, Tech2, Tech 1&2).
    pub coverage: [f64; 3],
    /// `true` if the row was sampled rather than exhaustive.
    pub sampled: bool,
}

impl fmt::Display for Table2Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>3}  {:>14}{} {:>8} {:>8} {:>8}",
            self.bits,
            self.situations,
            if self.sampled { "~" } else { " " },
            format_percent(self.coverage[0]),
            format_percent(self.coverage[1]),
            format_percent(self.coverage[2]),
        )
    }
}

/// Condenses a campaign result into a Table 2 row.
#[must_use]
pub fn table2_row(result: &CampaignResult) -> Table2Row {
    Table2Row {
        bits: result.width,
        situations: result.total_situations(),
        coverage: [
            result.coverage(TechIndex::Tech1),
            result.coverage(TechIndex::Tech2),
            result.coverage(TechIndex::Both),
        ],
        sampled: matches!(result.space, crate::InputSpace::Sampled { .. }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampaignBuilder, OperatorKind};

    #[test]
    fn percent_formatting_matches_paper_style() {
        assert_eq!(format_percent(0.9531), "95.31%");
        assert_eq!(format_percent(1.0), "100.00%");
        assert_eq!(format_percent(0.999_87), "99.99%");
    }

    #[test]
    fn row_from_campaign() {
        let r = CampaignBuilder::over(OperatorKind::Add, 1).run();
        let row = table2_row(&r);
        assert_eq!(row.bits, 1);
        assert_eq!(row.situations, 128);
        assert!(!row.sampled);
        let s = row.to_string();
        assert!(s.contains("128"), "{s}");
    }
}
