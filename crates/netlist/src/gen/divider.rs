//! Unrolled restoring divider generator (unsigned).

use super::adder::rca_into;
use crate::{NetId, Netlist, NetlistBuilder};

/// A complete n-bit **unsigned** restoring divider netlist: inputs `a`
/// (dividend), `b` (divisor); outputs `q` (quotient) and `r` (remainder).
///
/// The sequential divider of `scdp-arith` is unrolled into `n`
/// combinational stages, each holding an `(n+1)`-bit subtractor and a
/// restore multiplexer row. For `b == 0` the outputs follow the
/// hardware's natural (all-ones quotient) behaviour; callers performing
/// checked division must guard the divisor, as the paper's `/` operator
/// does at the specification level.
///
/// Sign handling is operand conditioning (the paper's fault-free
/// *g*-function) and therefore lives outside the gate-level unit; the
/// signed wrapper exists only in the functional model.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 32.
#[must_use]
pub fn restoring_divider(width: u32) -> Netlist {
    assert!((1..=32).contains(&width), "width {width} out of range");
    let mut b = NetlistBuilder::new(format!("divider{width}"));
    let a = b.input_bus("a", width);
    let d = b.input_bus("b", width);
    let (q, r) = restoring_divider_into(&mut b, &a, &d);
    b.output("q", &q);
    b.output("r", &r);
    b.finish()
}

/// Appends the unrolled restoring-divider core computing the unsigned
/// quotient and remainder of `a / d`; returns `(q, r)` bus nets (same
/// width as the operands). All internal constants are created inside
/// the call, so two instantiations at the same width are structurally
/// identical gate for gate — the property datapath elaboration relies
/// on for correlated fault injection across time-multiplexed uses.
///
/// # Panics
///
/// Panics if the operand buses have different lengths or are empty.
pub fn restoring_divider_into(
    b: &mut NetlistBuilder,
    a: &[NetId],
    d: &[NetId],
) -> (Vec<NetId>, Vec<NetId>) {
    assert_eq!(a.len(), d.len(), "operand width mismatch");
    let width = a.len();
    assert!(width > 0, "width must be positive");
    let zero = b.constant(false);
    let rbits = width + 1;
    // Divisor zero-extended to n+1 bits, inverted once (shared by every
    // stage's subtractor).
    let mut d_ext: Vec<NetId> = d.to_vec();
    d_ext.push(zero);
    let nd: Vec<NetId> = d_ext.iter().map(|&n| b.not(n)).collect();
    let one = b.constant(true);

    // Partial remainder, LSB first, n+1 bits.
    let mut r: Vec<NetId> = (0..rbits).map(|_| zero).collect();
    let mut q_bits: Vec<NetId> = Vec::with_capacity(width);
    for step in (0..width).rev() {
        // Shift left by one, bring in dividend bit `step`.
        let mut shifted = Vec::with_capacity(rbits);
        shifted.push(a[step]);
        shifted.extend_from_slice(&r[..rbits - 1]);
        // Trial subtraction T = shifted - d (via +!d+1); carry-out = no
        // borrow = keep.
        let inst = rca_into(b, &shifted, &nd, one);
        let keep = inst.cout;
        // Restore row: r = keep ? T : shifted.
        r = (0..rbits)
            .map(|i| b.mux(shifted[i], inst.sum[i], keep))
            .collect();
        q_bits.push(keep); // collected MSB-first
    }
    q_bits.reverse(); // back to LSB-first
    (q_bits, r[..width].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::Word;

    #[test]
    fn divider_matches_golden_unsigned_exhaustive() {
        for w in [1u32, 2, 3, 4, 5] {
            let nl = restoring_divider(w);
            for a in Word::all(w) {
                for b in Word::all(w) {
                    if b.bits() == 0 {
                        continue;
                    }
                    let out = nl.eval_words(&[a, b], &[]);
                    assert_eq!(out[0].bits(), a.bits() / b.bits(), "w={w} {a:?}/{b:?}");
                    assert_eq!(out[1].bits(), a.bits() % b.bits(), "w={w} {a:?}%{b:?}");
                }
            }
        }
    }

    #[test]
    fn divider_8bit_sampled() {
        let nl = restoring_divider(8);
        for a in (0u64..256).step_by(13) {
            for b in [1u64, 2, 3, 7, 10, 100, 255] {
                let out = nl.eval_words(&[Word::new(8, a), Word::new(8, b)], &[]);
                assert_eq!(out[0].bits(), a / b);
                assert_eq!(out[1].bits(), a % b);
            }
        }
    }

    #[test]
    fn identity_q_b_plus_r() {
        let nl = restoring_divider(4);
        for a in Word::all(4) {
            for b in Word::all(4).filter(|b| b.bits() != 0) {
                let out = nl.eval_words(&[a, b], &[]);
                assert_eq!(out[0].bits() * b.bits() + out[1].bits(), a.bits());
            }
        }
    }
}
