//! Bit-accurate functional-level arithmetic units with injectable cell
//! faults.
//!
//! This crate is the evaluation substrate of the paper's §4 ("Fault
//! coverage analysis"): functional units are modelled as networks of 1-bit
//! cells (full adders, partial-product AND gates, restore multiplexers),
//! and a fault forces one truth-table entry of one cell — exactly the
//! paper's "the faulty functional unit is the single full-adder in the
//! chain composing the n-bit adder", generalised to multipliers and
//! dividers.
//!
//! Units offered:
//!
//! * [`RippleCarryAdder`] — n-bit adder; subtraction is realised on the
//!   *same* cells through the paper's *g*-function (1's complement of the
//!   subtrahend) and *f*-function (carry-in forced to 1), so a fault in
//!   the adder affects both an addition and the checking subtraction.
//! * [`ArrayMultiplier`] — row-ripple array multiplier producing the low
//!   n bits of the product (two's-complement wrapping semantics).
//! * [`RestoringDivider`] — sequential restoring divider whose subtractor
//!   and restore multiplexers are *reused across iterations*, so a single
//!   cell fault perturbs every step.
//!
//! All units are deterministic, heap-free in their hot paths, and report
//! their [`FaultUniverse`] for exhaustive or sampled campaigns.
//!
//! # Example
//!
//! ```
//! use scdp_arith::{RippleCarryAdder, Word};
//!
//! let adder = RippleCarryAdder::new(8);
//! let a = Word::from_i64(8, 100);
//! let b = Word::from_i64(8, -27);
//! let sum = adder.add(a, b, None);
//! assert_eq!(sum.to_i64(), 73);
//! ```

#![warn(missing_docs)]

mod adder;
mod divider;
mod mult;
mod word;

pub use adder::{RcaFault, RippleCarryAdder};
pub use divider::{DivOutcome, RestoringDivider};
pub use mult::ArrayMultiplier;
pub use word::Word;

use scdp_fault::FaultUniverse;

/// Common interface of faultable functional units.
///
/// This trait is sealed conceptually to the units of this crate; it exists
/// so campaign drivers (`scdp-coverage`) can reason about widths and fault
/// universes generically.
pub trait FaultableUnit {
    /// Operand width in bits.
    fn width(&self) -> u32;
    /// The unit's complete cell-fault universe.
    fn universe(&self) -> FaultUniverse;
}
