//! Scheduling: ASAP, ALAP, mobility, resource-constrained list
//! scheduling.
//!
//! Conventions:
//!
//! * sequential operations start at a cycle and occupy their functional
//!   unit for `latency` consecutive cycles (non-pipelined units);
//! * *chained* operations ([`OpKind::is_chained`](crate::OpKind::is_chained)) are combinational
//!   checker logic evaluated in the cycle their last producer finishes —
//!   they occupy no resource and add no latency, only combinational
//!   delay (accounted by [`timing`](crate::timing));
//! * *virtual* nodes (inputs, constants, outputs) take no time.

use crate::dfg::{Dfg, NodeId, Role};
use crate::library::{ComponentLibrary, FuClass, ResourceSet};

/// A schedule: per-node start cycle and availability cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    start: Vec<u32>,
    avail: Vec<u32>,
    length: u32,
}

impl Schedule {
    /// Start cycle of a node (for chained nodes: the cycle in which the
    /// logic evaluates).
    #[must_use]
    pub fn start(&self, id: NodeId) -> u32 {
        self.start[id.index()]
    }

    /// First cycle at which the node's value can feed a sequential
    /// consumer.
    #[must_use]
    pub fn avail(&self, id: NodeId) -> u32 {
        self.avail[id.index()]
    }

    /// Total schedule length in cycles (the makespan of all nodes).
    #[must_use]
    pub fn length(&self) -> u32 {
        self.length
    }

    /// Schedule length restricted to [`Role::Nominal`] nodes — the
    /// per-iteration latency when checker operations run on dedicated
    /// units and may overlap the next iteration.
    #[must_use]
    pub fn nominal_length(&self, dfg: &Dfg) -> u32 {
        dfg.iter()
            .filter(|(_, n)| n.role == Role::Nominal && !n.kind.is_virtual())
            .map(|(id, _)| self.avail[id.index()])
            .max()
            .unwrap_or(0)
    }
}

fn node_inputs_avail(dfg: &Dfg, avail: &[u32], id: NodeId) -> u32 {
    dfg.node(id)
        .args
        .iter()
        .map(|a| avail[a.index()])
        .max()
        .unwrap_or(0)
}

fn place(
    dfg: &Dfg,
    lib: &ComponentLibrary,
    start_of: impl Fn(NodeId, u32) -> u32,
) -> (Vec<u32>, Vec<u32>, u32) {
    let n = dfg.len();
    let mut start = vec![0u32; n];
    let mut avail = vec![0u32; n];
    let mut length = 0u32;
    for (id, node) in dfg.iter() {
        let ready = node_inputs_avail(dfg, &avail, id);
        let t = lib.timing(&node.kind);
        if node.kind.is_virtual() {
            start[id.index()] = ready;
            avail[id.index()] = ready;
        } else if node.kind.is_chained() {
            // Evaluates combinationally in the cycle its last producer
            // finishes (ready - 1), consumable from `ready`.
            start[id.index()] = ready.saturating_sub(1);
            avail[id.index()] = ready;
        } else {
            let s = start_of(id, ready);
            start[id.index()] = s;
            avail[id.index()] = s + t.latency;
            length = length.max(s + t.latency);
        }
    }
    (start, avail, length)
}

/// As-soon-as-possible schedule (unlimited resources).
#[must_use]
pub fn asap(dfg: &Dfg, lib: &ComponentLibrary) -> Schedule {
    let (start, avail, length) = place(dfg, lib, |_, ready| ready);
    Schedule {
        start,
        avail,
        length,
    }
}

/// As-late-as-possible start cycles against `horizon` (typically the
/// ASAP length). Returns per-node ALAP start cycles.
///
/// # Panics
///
/// Panics if `horizon` is shorter than the critical path.
#[must_use]
pub fn alap_starts(dfg: &Dfg, lib: &ComponentLibrary, horizon: u32) -> Vec<u32> {
    let n = dfg.len();
    // deadline[i]: latest avail cycle allowed.
    let mut deadline = vec![horizon; n];
    for (id, node) in dfg.iter().collect::<Vec<_>>().into_iter().rev() {
        let t = lib.timing(&node.kind);
        let lat = if node.kind.is_virtual() || node.kind.is_chained() {
            0
        } else {
            t.latency
        };
        let start_latest = deadline[id.index()]
            .checked_sub(lat)
            .unwrap_or_else(|| panic!("horizon {horizon} shorter than critical path at {id}"));
        for a in &node.args {
            deadline[a.index()] = deadline[a.index()].min(start_latest);
        }
    }
    // Convert avail deadlines to start cycles.
    dfg.iter()
        .map(|(id, node)| {
            let t = lib.timing(&node.kind);
            let lat = if node.kind.is_virtual() || node.kind.is_chained() {
                0
            } else {
                t.latency
            };
            deadline[id.index()].saturating_sub(lat)
        })
        .collect()
}

/// Per-node mobility (ALAP − ASAP start); zero for critical-path nodes.
#[must_use]
pub fn mobility(dfg: &Dfg, lib: &ComponentLibrary) -> Vec<u32> {
    let asap_sched = asap(dfg, lib);
    let alap = alap_starts(dfg, lib, asap_sched.length());
    dfg.iter()
        .map(|(id, _)| alap[id.index()].saturating_sub(asap_sched.start(id)))
        .collect()
}

/// Resource-constrained list scheduling with mobility priority (lower
/// mobility first; ties broken by node order).
///
/// Sequential nodes contend for [`ResourceSet`] capacity; chained and
/// virtual nodes are placed for free as soon as their inputs are ready.
#[must_use]
pub fn list_schedule(dfg: &Dfg, lib: &ComponentLibrary, resources: &ResourceSet) -> Schedule {
    let n = dfg.len();
    let prio = mobility(dfg, lib);
    let mut start = vec![u32::MAX; n];
    let mut avail = vec![u32::MAX; n];
    let mut length = 0u32;
    // busy[class] -> per-cycle usage count (grow on demand).
    let mut busy: std::collections::HashMap<FuClass, Vec<usize>> = std::collections::HashMap::new();
    let mut unscheduled: Vec<NodeId> = dfg.iter().map(|(id, _)| id).collect();

    let mut cycle = 0u32;
    let mut guard = 0u32;
    while !unscheduled.is_empty() {
        guard += 1;
        assert!(guard < 1_000_000, "scheduler failed to converge");
        // Place all virtual/chained nodes whose inputs are ready.
        let mut progressed = true;
        while progressed {
            progressed = false;
            unscheduled.retain(|&id| {
                let node = dfg.node(id);
                let ready = node.args.iter().all(|a| avail[a.index()] != u32::MAX);
                if !ready {
                    return true;
                }
                let inputs_avail = node_inputs_avail_done(dfg, &avail, id);
                if node.kind.is_virtual() {
                    start[id.index()] = inputs_avail;
                    avail[id.index()] = inputs_avail;
                    progressed = true;
                    false
                } else if node.kind.is_chained() {
                    start[id.index()] = inputs_avail.saturating_sub(1);
                    avail[id.index()] = inputs_avail;
                    progressed = true;
                    false
                } else {
                    true
                }
            });
        }
        // Collect sequential candidates ready at `cycle`.
        let mut candidates: Vec<NodeId> = unscheduled
            .iter()
            .copied()
            .filter(|&id| {
                let node = dfg.node(id);
                node.args.iter().all(|a| avail[a.index()] != u32::MAX)
                    && node_inputs_avail_done(dfg, &avail, id) <= cycle
            })
            .collect();
        candidates.sort_by_key(|id| (prio[id.index()], id.index()));
        for id in candidates {
            let node = dfg.node(id);
            let class = ComponentLibrary::fu_class(&node.kind).expect("sequential node");
            let lat = lib.timing(&node.kind).latency.max(1);
            let lanes = busy.entry(class).or_default();
            let needed = (cycle + lat) as usize;
            if lanes.len() < needed {
                lanes.resize(needed, 0);
            }
            let cap = resources.of(class);
            let free = (cycle..cycle + lat).all(|c| lanes[c as usize] < cap);
            if free {
                for c in cycle..cycle + lat {
                    lanes[c as usize] += 1;
                }
                start[id.index()] = cycle;
                avail[id.index()] = cycle + lat;
                length = length.max(cycle + lat);
                unscheduled.retain(|&u| u != id);
            }
        }
        cycle += 1;
    }
    Schedule {
        start,
        avail,
        length,
    }
}

fn node_inputs_avail_done(dfg: &Dfg, avail: &[u32], id: NodeId) -> u32 {
    dfg.node(id)
        .args
        .iter()
        .map(|a| avail[a.index()])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::OpKind;

    fn mac_dfg() -> Dfg {
        let mut d = Dfg::new("mac");
        let c = d.input("c");
        let x = d.input("x");
        let acc = d.input("acc");
        let t = d.op(OpKind::Mul, &[c, x]);
        let s = d.op(OpKind::Add, &[acc, t]);
        d.output("acc2", s);
        d
    }

    #[test]
    fn asap_critical_path() {
        let d = mac_dfg();
        let lib = ComponentLibrary::virtex16();
        let s = asap(&d, &lib);
        // mult latency 2 + add 1.
        assert_eq!(s.length(), 3);
    }

    #[test]
    fn alap_and_mobility() {
        let mut d = Dfg::new("two");
        let a = d.input("a");
        let b = d.input("b");
        let m = d.op(OpKind::Mul, &[a, b]); // critical: 2 cycles
        let s1 = d.op(OpKind::Add, &[a, b]); // slack: 1 cycle vs horizon 3
        let s2 = d.op(OpKind::Add, &[m, s1]);
        d.output("o", s2);
        let lib = ComponentLibrary::virtex16();
        let mob = mobility(&d, &lib);
        assert_eq!(mob[m.index()], 0, "multiply is critical");
        assert!(mob[s1.index()] > 0, "first add has slack");
        assert_eq!(mob[s2.index()], 0);
    }

    #[test]
    fn list_schedule_respects_resources() {
        // Two independent multiplies, one multiplier: serialized.
        let mut d = Dfg::new("two_mults");
        let a = d.input("a");
        let b = d.input("b");
        let m1 = d.op(OpKind::Mul, &[a, b]);
        let m2 = d.op(OpKind::Mul, &[b, a]);
        d.output("o1", m1);
        d.output("o2", m2);
        let lib = ComponentLibrary::virtex16();
        let one = ResourceSet {
            alus: 1,
            mults: 1,
            divs: 1,
            mem_ports: 1,
        };
        let s = list_schedule(&d, &lib, &one);
        assert_eq!(s.length(), 4, "2 + 2 serialized");
        let many = ResourceSet { mults: 2, ..one };
        let s2 = list_schedule(&d, &lib, &many);
        assert_eq!(s2.length(), 2, "parallel with two multipliers");
    }

    #[test]
    fn list_schedule_matches_asap_with_infinite_resources() {
        let d = mac_dfg();
        let lib = ComponentLibrary::virtex16();
        let inf = ResourceSet {
            alus: 99,
            mults: 99,
            divs: 99,
            mem_ports: 99,
        };
        assert_eq!(
            list_schedule(&d, &lib, &inf).length(),
            asap(&d, &lib).length()
        );
    }

    #[test]
    fn chained_nodes_take_no_cycle() {
        let mut d = Dfg::new("chk");
        let a = d.input("a");
        let b = d.input("b");
        let s = d.op(OpKind::Add, &[a, b]);
        let c = d.checker_op(OpKind::Sub, &[s, a], s);
        let ne = d.checker_op(OpKind::CmpNe, &[c, b], s);
        d.output("err", ne);
        let lib = ComponentLibrary::virtex16();
        let sched = asap(&d, &lib);
        assert_eq!(sched.length(), 2, "add + checking sub; cmp chained");
        assert_eq!(sched.start(ne), 1, "cmp evaluates in the sub's cycle");
        assert_eq!(sched.avail(ne), 2);
    }

    #[test]
    fn nominal_length_excludes_checker_tail() {
        let mut d = Dfg::new("tail");
        let a = d.input("a");
        let b = d.input("b");
        let m = d.op(OpKind::Mul, &[a, b]);
        d.output("o", m);
        // Checker multiply runs after (on another unit).
        let n = d.checker_op(OpKind::Mul, &[a, b], m);
        let z = d.checker_op(OpKind::Add, &[m, n], m);
        let ne = d.checker_op(OpKind::CmpNe, &[z, a], m);
        let _ = d.output("err", ne);
        let lib = ComponentLibrary::virtex16();
        let s = list_schedule(&d, &lib, &ResourceSet::min_latency());
        assert!(s.length() > s.nominal_length(&d));
        assert_eq!(s.nominal_length(&d), 2);
    }

    #[test]
    fn mem_port_contention() {
        let mut d = Dfg::new("mem");
        let i = d.input("i");
        let l1 = d.op(OpKind::Load { bank: 0 }, &[i]);
        let l2 = d.op(OpKind::Load { bank: 1 }, &[i]);
        d.output("a", l1);
        d.output("b", l2);
        let lib = ComponentLibrary::virtex16();
        let s1 = list_schedule(&d, &lib, &ResourceSet::min_area());
        assert_eq!(s1.length(), 2, "one port serializes the loads");
        let s2 = list_schedule(&d, &lib, &ResourceSet::min_latency());
        assert_eq!(s2.length(), 1, "two ports");
    }
}
