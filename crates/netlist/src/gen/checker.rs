//! Self-checking datapath generator: the structural realisation of the
//! paper's overloaded operators.

use super::adder::{cla_into, csa_into, rca_into, FaCells, RcaInstance};
use super::compare::neq_into;
use super::mult::array_mult_into;
use crate::{NetId, Netlist, NetlistBuilder, StuckAtLine, StuckSite};
use scdp_core::{Operator, Technique};
use scdp_fault::FaSite;
use std::fmt;

/// Structural realisation of the adder instances inside a generated
/// self-checking `+` datapath.
///
/// The paper claims its coverage analysis is "independent of the actual
/// implementation"; [`self_checking_add_with`] turns that claim into a
/// testable axis by generating the same nominal/checking architecture
/// over structurally different adders.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AdderRealisation {
    /// Chain of five-gate full adders.
    RippleCarry,
    /// 4-bit-group two-level lookahead.
    CarryLookahead,
    /// 3:2 compress stage plus ripple merge.
    CarrySave,
}

impl AdderRealisation {
    /// All realisations, in cross-validation order.
    pub const ALL: [AdderRealisation; 3] = [
        AdderRealisation::RippleCarry,
        AdderRealisation::CarryLookahead,
        AdderRealisation::CarrySave,
    ];

    /// Short table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdderRealisation::RippleCarry => "RCA",
            AdderRealisation::CarryLookahead => "CLA",
            AdderRealisation::CarrySave => "CSA",
        }
    }

    /// Appends one adder instance of this realisation.
    fn build_into(
        self,
        b: &mut NetlistBuilder,
        x: &[NetId],
        y: &[NetId],
        cin: NetId,
    ) -> Vec<NetId> {
        match self {
            AdderRealisation::RippleCarry => rca_into(b, x, y, cin).sum,
            AdderRealisation::CarryLookahead => cla_into(b, x, y, cin).0,
            AdderRealisation::CarrySave => csa_into(b, x, y, cin).0,
        }
    }
}

impl fmt::Display for AdderRealisation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Specification of a self-checking datapath to generate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SelfCheckingSpec {
    /// The nominal operator (`Add`, `Sub` or `Mul`; gate-level division
    /// checking is out of scope — see crate docs).
    pub op: Operator,
    /// The checking technique (Table 1 column).
    pub technique: Technique,
    /// Operand width in bits.
    pub width: u32,
}

/// A unit instance inside a generated datapath: the contiguous gate-id
/// range produced by one generator call.
///
/// Instances produced by the same generator at the same width are
/// structurally identical, so a fault at local offset `k` in one instance
/// corresponds to local offset `k` in another — the basis of correlated
/// ("same physical unit, time-multiplexed") fault injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitInstance {
    /// Instance name (e.g. `"nominal"`, `"check1"`).
    pub name: String,
    /// First gate id of the instance.
    pub start: usize,
    /// One past the last gate id of the instance.
    pub end: usize,
}

impl UnitInstance {
    /// Number of gates in the instance.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the instance contains no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Translates a site local to this instance into a global site.
    ///
    /// # Panics
    ///
    /// Panics if the local gate offset is out of range.
    #[must_use]
    pub fn globalize(&self, local: StuckSite) -> StuckSite {
        assert!(local.gate < self.len(), "local gate out of range");
        StuckSite {
            gate: self.start + local.gate,
            pin: local.pin,
        }
    }
}

/// A generated self-checking datapath: inputs `op1`, `op2`; outputs
/// `ris` (the nominal result) and `error` (1 if any check fired).
#[derive(Clone, Debug)]
pub struct SelfCheckingDatapath {
    /// The generated netlist.
    pub netlist: Netlist,
    /// The specification it was generated from.
    pub spec: SelfCheckingSpec,
    /// The nominal unit instance.
    pub nominal: UnitInstance,
    /// The checking unit instances (same structure as `nominal`).
    pub checkers: Vec<UnitInstance>,
    /// Per-bit full-adder cell maps of the nominal instance, with
    /// instance-local gate offsets. Present only when the nominal unit is
    /// a ripple-carry chain of five-gate full adders (`+`/`−` datapaths
    /// on the [`AdderRealisation::RippleCarry`] realisation) — the
    /// realisations that admit the functional fault model of
    /// `scdp-arith` (see [`SelfCheckingDatapath::fa_gate_fault_groups`]).
    pub fa_cells: Option<Vec<FaCells>>,
}

impl SelfCheckingDatapath {
    /// Correlates a fault local to the nominal unit across **all**
    /// instances — modelling one physical unit reused for the nominal and
    /// checking operations (the paper's worst case).
    ///
    /// # Panics
    ///
    /// Panics if the local gate offset exceeds the instance size.
    #[must_use]
    pub fn correlated_fault(&self, local: StuckSite, value: bool) -> Vec<StuckAtLine> {
        let mut faults = vec![StuckAtLine::new(self.nominal.globalize(local), value)];
        for c in &self.checkers {
            faults.push(StuckAtLine::new(c.globalize(local), value));
        }
        faults
    }

    /// A fault in the nominal unit only — the dedicated-checker
    /// allocation (checking units fault-free).
    ///
    /// # Panics
    ///
    /// Panics if the local gate offset exceeds the instance size.
    #[must_use]
    pub fn nominal_fault(&self, local: StuckSite, value: bool) -> Vec<StuckAtLine> {
        vec![StuckAtLine::new(self.nominal.globalize(local), value)]
    }

    /// The paper's functional fault universe (`32·n`: 16 [`FaSite`]s × 2
    /// polarities per full adder, position-major, stuck-at-0 before
    /// stuck-at-1) expressed as netlist fault groups, in exactly the
    /// enumeration order of `scdp_arith::RippleCarryAdder::gate_faults`.
    ///
    /// Each group is one multiple-stuck-at fault: the structural sites
    /// equivalent to the functional [`FaSite`] ([`FaCells::sites`]),
    /// replicated across the nominal and every checking instance when
    /// `correlated` (the shared-physical-unit worst case) or confined to
    /// the nominal instance otherwise (dedicated checkers).
    ///
    /// Returns `None` when the datapath does not retain full-adder cell
    /// maps (multiplier datapaths, CLA/CSA realisations) — those only
    /// support the structural [`local_sites`](Self::local_sites) model.
    #[must_use]
    pub fn fa_gate_fault_groups(&self, correlated: bool) -> Option<Vec<Vec<StuckAtLine>>> {
        let cells = self.fa_cells.as_ref()?;
        let mut groups = Vec::with_capacity(cells.len() * 32);
        for fa in cells {
            for site in FaSite::ALL {
                for value in [false, true] {
                    let mut group = Vec::new();
                    for local in fa.sites(site) {
                        group.push(StuckAtLine::new(self.nominal.globalize(local), value));
                        if correlated {
                            for c in &self.checkers {
                                group.push(StuckAtLine::new(c.globalize(local), value));
                            }
                        }
                    }
                    groups.push(group);
                }
            }
        }
        Some(groups)
    }

    /// Enumerates every stuck-at site local to one unit instance.
    #[must_use]
    pub fn local_sites(&self) -> Vec<StuckSite> {
        let gates = self.netlist.gates();
        let mut sites = Vec::new();
        for offset in 0..self.nominal.len() {
            let g = gates[self.nominal.start + offset];
            sites.push(StuckSite {
                gate: offset,
                pin: None,
            });
            for pin in 0..g.kind.pins() {
                sites.push(StuckSite {
                    gate: offset,
                    pin: Some(pin),
                });
            }
        }
        sites
    }
}

fn instance(name: &str, start: usize, end: usize) -> UnitInstance {
    UnitInstance {
        name: name.to_string(),
        start,
        end,
    }
}

/// Generates the self-checking datapath for `spec`.
///
/// Layout per operator (checker comparisons are fault-free hardware,
/// outside every instance):
///
/// * **Add**: `ris = op1 + op2` on an RCA; Tech1 re-derives
///   `op2' = ris − op1`, Tech2 `op1' = ris − op2`, each on a structural
///   twin of the adder; `error` ORs the comparator outputs.
/// * **Sub**: `ris = op1 − op2`; Tech1 `op1' = ris + op2`; Tech2
///   `ris' = op2 − op1` plus the zero-check addition `ris + ris'`.
/// * **Mul**: `ris = op1 × op2` on an array multiplier; Tech1
///   `ris' = (−op1) × op2`, Tech2 `ris' = op1 × (−op2)`; each checked by
///   `ris + ris' == 0` (negation and the zero-check adder are fault-free
///   conditioning).
///
/// # Panics
///
/// Panics if `spec.op` is [`Operator::Div`] (not supported at gate
/// level) or `spec.width` is 0.
#[must_use]
pub fn self_checking(spec: SelfCheckingSpec) -> SelfCheckingDatapath {
    assert!(spec.width > 0, "width must be positive");
    let w = spec.width;
    let op_name = match spec.op {
        Operator::Add => "add",
        Operator::Sub => "sub",
        Operator::Mul => "mul",
        Operator::Div => "div",
    };
    let mut b = NetlistBuilder::new(format!("sck_{op_name}_{:?}_{w}", spec.technique));
    let op1 = b.input_bus("op1", w);
    let op2 = b.input_bus("op2", w);

    let (ris, nominal, checkers, error, fa_cells) = match spec.op {
        Operator::Add => build_add(&mut b, spec, &op1, &op2),
        Operator::Sub => build_sub(&mut b, spec, &op1, &op2),
        Operator::Mul => build_mul(&mut b, spec, &op1, &op2),
        Operator::Div => panic!("gate-level division checking is not supported"),
    };

    b.output("ris", &ris);
    b.output("error", &[error]);
    SelfCheckingDatapath {
        netlist: b.finish(),
        spec,
        nominal,
        checkers,
        fa_cells,
    }
}

/// Generates a self-checking `+` datapath whose nominal and checking
/// adder instances all use the given structural `realisation` —
/// `ris = op1 + op2`, Tech1 re-deriving `op2' = ris − op1`, Tech2
/// `op1' = ris − op2` (subtraction through fault-free inverters and
/// carry-in 1 on the same realisation), comparators outside every
/// instance.
///
/// [`self_checking`] with [`Operator::Add`] is the
/// [`AdderRealisation::RippleCarry`] special case (kept separate
/// because it also exposes the full-adder cell map).
///
/// # Panics
///
/// Panics if `width` is 0.
#[must_use]
pub fn self_checking_add_with(
    width: u32,
    technique: Technique,
    realisation: AdderRealisation,
) -> SelfCheckingDatapath {
    assert!(width > 0, "width must be positive");
    let mut b = NetlistBuilder::new(format!(
        "sck_add_{}_{technique:?}_{width}",
        realisation.label()
    ));
    let op1 = b.input_bus("op1", width);
    let op2 = b.input_bus("op2", width);

    let zero = b.constant(false);
    let start = b.mark();
    let (ris, fa_cells) = match realisation {
        AdderRealisation::RippleCarry => {
            let inst = rca_into(&mut b, &op1, &op2, zero);
            let cells = inst.fas.iter().map(|c| c.rebased(start)).collect();
            (inst.sum, Some(cells))
        }
        _ => (realisation.build_into(&mut b, &op1, &op2, zero), None),
    };
    let nominal = instance("nominal", start, b.mark());

    let mut checkers = Vec::new();
    let mut alarms = Vec::new();
    let check = |b: &mut NetlistBuilder, name: &str, minuend: &[NetId], sub: &[NetId]| {
        let ns: Vec<NetId> = sub.iter().map(|&n| b.not(n)).collect();
        let one = b.constant(true);
        let start = b.mark();
        let chk = realisation.build_into(b, minuend, &ns, one);
        (instance(name, start, b.mark()), chk)
    };
    if technique.uses_tech1() {
        let (inst, chk) = check(&mut b, "check1", &ris, &op1);
        alarms.push(neq_into(&mut b, &chk, &op2));
        checkers.push(inst);
    }
    if technique.uses_tech2() {
        let (inst, chk) = check(&mut b, "check2", &ris, &op2);
        alarms.push(neq_into(&mut b, &chk, &op1));
        checkers.push(inst);
    }
    let error = b.or_tree(&alarms);
    b.output("ris", &ris);
    b.output("error", &[error]);
    SelfCheckingDatapath {
        netlist: b.finish(),
        spec: SelfCheckingSpec {
            op: Operator::Add,
            technique,
            width,
        },
        nominal,
        checkers,
        fa_cells,
    }
}

/// Appends an RCA instance computing `x + y + cin`, recording its range.
fn adder_instance(
    b: &mut NetlistBuilder,
    name: &str,
    x: &[NetId],
    y: &[NetId],
    cin: NetId,
) -> (RcaInstance, UnitInstance) {
    let start = b.mark();
    let inst = rca_into(b, x, y, cin);
    let end = b.mark();
    (inst, instance(name, start, end))
}

/// `x - y` through fault-free conditioning (`!y`, carry-in 1) feeding a
/// recorded adder instance.
fn sub_instance(
    b: &mut NetlistBuilder,
    name: &str,
    x: &[NetId],
    y: &[NetId],
) -> (RcaInstance, UnitInstance) {
    let ny: Vec<NetId> = y.iter().map(|&n| b.not(n)).collect();
    let one = b.constant(true);
    adder_instance(b, name, x, &ny, one)
}

/// What every `build_*` generator hands back: result bus, nominal
/// instance, checker instances, error net and (for ripple-carry nominal
/// units) the full-adder cell maps in instance-local offsets.
type BuiltDatapath = (
    Vec<NetId>,
    UnitInstance,
    Vec<UnitInstance>,
    NetId,
    Option<Vec<FaCells>>,
);

fn build_add(
    b: &mut NetlistBuilder,
    spec: SelfCheckingSpec,
    op1: &[NetId],
    op2: &[NetId],
) -> BuiltDatapath {
    let zero = b.constant(false);
    let (nom, nom_inst) = adder_instance(b, "nominal", op1, op2, zero);
    let fa_cells = nom.fas.iter().map(|c| c.rebased(nom_inst.start)).collect();
    let ris = nom.sum.clone();
    let mut checkers = Vec::new();
    let mut alarms = Vec::new();
    if spec.technique.uses_tech1() {
        let (chk, inst) = sub_instance(b, "check1", &ris, op1);
        alarms.push(neq_into(b, &chk.sum, op2));
        checkers.push(inst);
    }
    if spec.technique.uses_tech2() {
        let (chk, inst) = sub_instance(b, "check2", &ris, op2);
        alarms.push(neq_into(b, &chk.sum, op1));
        checkers.push(inst);
    }
    let error = b.or_tree(&alarms);
    (ris, nom_inst, checkers, error, Some(fa_cells))
}

fn build_sub(
    b: &mut NetlistBuilder,
    spec: SelfCheckingSpec,
    op1: &[NetId],
    op2: &[NetId],
) -> BuiltDatapath {
    let (nom, nom_inst) = sub_instance(b, "nominal", op1, op2);
    let fa_cells = nom.fas.iter().map(|c| c.rebased(nom_inst.start)).collect();
    let ris = nom.sum.clone();
    let mut checkers = Vec::new();
    let mut alarms = Vec::new();
    if spec.technique.uses_tech1() {
        let zero = b.constant(false);
        let (chk, inst) = adder_instance(b, "check1", &ris, op2, zero);
        alarms.push(neq_into(b, &chk.sum, op1));
        checkers.push(inst);
    }
    if spec.technique.uses_tech2() {
        let (dual, dual_inst) = sub_instance(b, "check2a", op2, op1);
        let zero = b.constant(false);
        let (zsum, zsum_inst) = adder_instance(b, "check2b", &ris, &dual.sum, zero);
        let any = b.or_tree(&zsum.sum);
        alarms.push(any);
        checkers.push(dual_inst);
        checkers.push(zsum_inst);
    }
    let error = b.or_tree(&alarms);
    (ris, nom_inst, checkers, error, Some(fa_cells))
}

fn build_mul(
    b: &mut NetlistBuilder,
    spec: SelfCheckingSpec,
    op1: &[NetId],
    op2: &[NetId],
) -> BuiltDatapath {
    let start = b.mark();
    let (ris, _) = array_mult_into(b, op1, op2);
    let nom_inst = instance("nominal", start, b.mark());
    let mut checkers = Vec::new();
    let mut alarms = Vec::new();
    if spec.technique.uses_tech1() {
        let neg1 = negate_bus(b, op1);
        let start = b.mark();
        let (risp, _) = array_mult_into(b, &neg1, op2);
        checkers.push(instance("check1", start, b.mark()));
        alarms.push(zero_sum_alarm(b, &ris, &risp));
    }
    if spec.technique.uses_tech2() {
        let neg2 = negate_bus(b, op2);
        let start = b.mark();
        let (risp, _) = array_mult_into(b, op1, &neg2);
        checkers.push(instance("check2", start, b.mark()));
        alarms.push(zero_sum_alarm(b, &ris, &risp));
    }
    let error = b.or_tree(&alarms);
    (ris, nom_inst, checkers, error, None)
}

/// Fault-free negation: `!x + 1` via inverters and an adder outside any
/// instance.
fn negate_bus(b: &mut NetlistBuilder, x: &[NetId]) -> Vec<NetId> {
    let nx: Vec<NetId> = x.iter().map(|&n| b.not(n)).collect();
    let zero = b.constant(false);
    let zeros = vec![zero; x.len()];
    let one = b.constant(true);
    rca_into(b, &nx, &zeros, one).sum
}

/// Fault-free `ris + ris' != 0` alarm.
fn zero_sum_alarm(b: &mut NetlistBuilder, ris: &[NetId], risp: &[NetId]) -> NetId {
    let zero = b.constant(false);
    let sum = rca_into(b, ris, risp, zero).sum;
    b.or_tree(&sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_arith::Word;

    fn eval(dp: &SelfCheckingDatapath, a: Word, b: Word, faults: &[StuckAtLine]) -> (Word, bool) {
        let out = dp.netlist.eval_words(&[a, b], faults);
        (out[0], out[1].bits() != 0)
    }

    #[test]
    fn add_datapath_fault_free() {
        for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            let dp = self_checking(SelfCheckingSpec {
                op: Operator::Add,
                technique: tech,
                width: 4,
            });
            for a in Word::all(4) {
                for b in Word::all(4) {
                    let (ris, err) = eval(&dp, a, b, &[]);
                    assert_eq!(ris, a.wrapping_add(b));
                    assert!(!err, "{tech} {a:?}+{b:?}");
                }
            }
        }
    }

    #[test]
    fn sub_datapath_fault_free() {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Sub,
            technique: Technique::Both,
            width: 4,
        });
        for a in Word::all(4) {
            for b in Word::all(4) {
                let (ris, err) = eval(&dp, a, b, &[]);
                assert_eq!(ris, a.wrapping_sub(b));
                assert!(!err);
            }
        }
    }

    #[test]
    fn mul_datapath_fault_free() {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Mul,
            technique: Technique::Both,
            width: 4,
        });
        for a in Word::all(4) {
            for b in Word::all(4) {
                let (ris, err) = eval(&dp, a, b, &[]);
                assert_eq!(ris, a.wrapping_mul(b));
                assert!(!err, "{a:?}*{b:?}");
            }
        }
    }

    #[test]
    fn dedicated_fault_always_detected_when_observable() {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: Technique::Tech1,
            width: 3,
        });
        for site in dp.local_sites() {
            for value in [false, true] {
                let faults = dp.nominal_fault(site, value);
                for a in Word::all(3) {
                    for b in Word::all(3) {
                        let (ris, err) = eval(&dp, a, b, &faults);
                        if ris != a.wrapping_add(b) {
                            assert!(err, "site {site:?} sa{} {a:?}+{b:?}", u8::from(value));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn correlated_fault_can_escape() {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: Technique::Tech1,
            width: 3,
        });
        let mut escaped = false;
        'outer: for site in dp.local_sites() {
            for value in [false, true] {
                let faults = dp.correlated_fault(site, value);
                for a in Word::all(3) {
                    for b in Word::all(3) {
                        let (ris, err) = eval(&dp, a, b, &faults);
                        if ris != a.wrapping_add(b) && !err {
                            escaped = true;
                            break 'outer;
                        }
                    }
                }
            }
        }
        assert!(escaped, "shared-unit masking must exist at gate level");
    }

    #[test]
    fn fa_gate_groups_follow_functional_universe_shape() {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: Technique::Both,
            width: 3,
        });
        let groups = dp
            .fa_gate_fault_groups(true)
            .expect("RCA add has cell maps");
        assert_eq!(groups.len(), 32 * 3, "16 sites x 2 polarities x n bits");
        // The a-stem site is two branch pins, correlated across the
        // nominal and both checker instances.
        assert_eq!(groups[0].len(), 2 * 3);
        // Dedicated injection confines the group to the nominal unit.
        let nominal_only = dp.fa_gate_fault_groups(false).expect("cell maps");
        assert_eq!(nominal_only[0].len(), 2);
        // Multiplier datapaths have no full-adder cell map.
        let mul = self_checking(SelfCheckingSpec {
            op: Operator::Mul,
            technique: Technique::Tech1,
            width: 2,
        });
        assert!(mul.fa_gate_fault_groups(true).is_none());
    }

    /// The twin groups must corrupt the generated nominal adder exactly
    /// as `RippleCarryAdder::gate_faults` corrupts the functional one —
    /// fault-for-fault, in the same enumeration order.
    #[test]
    fn fa_gate_groups_reproduce_functional_adder_faults() {
        use scdp_arith::RippleCarryAdder;
        let width = 2;
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: Technique::Tech1,
            width,
        });
        let adder = RippleCarryAdder::new(width);
        let groups = dp.fa_gate_fault_groups(false).expect("cell maps");
        let faults: Vec<_> = adder.gate_faults().collect();
        assert_eq!(groups.len(), faults.len());
        for (rf, group) in faults.iter().zip(&groups) {
            for a in Word::all(width) {
                for b in Word::all(width) {
                    let out = dp.netlist.eval_words(&[a, b], group);
                    assert_eq!(out[0], adder.add(a, b, Some(*rf)), "{rf:?} {a:?}+{b:?}");
                }
            }
        }
    }

    #[test]
    fn instances_are_structurally_identical() {
        let dp = self_checking(SelfCheckingSpec {
            op: Operator::Add,
            technique: Technique::Both,
            width: 8,
        });
        let gates = dp.netlist.gates();
        for c in &dp.checkers {
            assert_eq!(c.len(), dp.nominal.len(), "{}", c.name);
            for k in 0..c.len() {
                assert_eq!(
                    gates[dp.nominal.start + k].kind,
                    gates[c.start + k].kind,
                    "gate kind mismatch at offset {k} in {}",
                    c.name
                );
            }
        }
    }
}
