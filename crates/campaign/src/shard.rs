//! Deterministic fault-universe partitioning for sharded campaigns.
//!
//! A full campaign over the sequential engine is minutes of wall-clock
//! and, without partitioning, an all-or-nothing run — one crash loses
//! everything. A [`ShardPlan`] splits any fault universe (gate,
//! datapath, sequential) into `N` contiguous, balanced shards; each
//! shard runs as an ordinary campaign restricted to its range
//! (`fault_range` on the engine drivers) and is checkpointed as a
//! `scdp.campaign.report/v4` document carrying a [`ShardInfo`] section.
//! Because every fault replays the same deterministic input stream
//! independently of its neighbours, re-merging the partial reports
//! ([`crate::CampaignReport::merge`]) reproduces the unsharded report
//! **bit for bit** — tallies, per-fault outcomes and latency histograms
//! — at any shard count and thread count.

use crate::error::CampaignError;

/// A deterministic partition of `total_faults` universe indices into
/// `shards` contiguous, maximally balanced ranges.
///
/// ```
/// use scdp_campaign::ShardPlan;
///
/// let plan = ShardPlan::new(10, 4).expect("valid plan");
/// let ranges: Vec<_> = (0..4).map(|i| plan.range(i)).collect();
/// assert_eq!(ranges, vec![0..3, 3..6, 6..8, 8..10]);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    total_faults: u64,
    shards: u32,
}

impl ShardPlan {
    /// A plan over `total_faults` universe indices in `shards` pieces.
    /// Empty universes and plans with more shards than faults are fine
    /// (surplus shards get empty ranges) — what matters is that the
    /// ranges always tile `0..total_faults` deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::ZeroShards`] when `shards` is 0.
    pub fn new(total_faults: u64, shards: u32) -> Result<ShardPlan, CampaignError> {
        if shards == 0 {
            return Err(CampaignError::ZeroShards);
        }
        Ok(ShardPlan {
            total_faults,
            shards,
        })
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of universe indices the plan partitions.
    #[must_use]
    pub fn total_faults(&self) -> u64 {
        self.total_faults
    }

    /// The universe range of shard `index`: the first
    /// `total_faults % shards` shards carry one extra fault, so shard
    /// sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics if `index >= shards` (validate with
    /// [`ShardPlan::check_index`] first).
    #[must_use]
    pub fn range(&self, index: u32) -> std::ops::Range<u64> {
        assert!(index < self.shards, "shard index out of range");
        let (index, shards) = (u64::from(index), u64::from(self.shards));
        let q = self.total_faults / shards;
        let r = self.total_faults % shards;
        let start = index * q + index.min(r);
        let len = q + u64::from(index < r);
        start..start + len
    }

    /// Validates a shard index against the plan.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::ShardIndexOutOfRange`] when
    /// `index >= shards`.
    pub fn check_index(&self, index: u32) -> Result<(), CampaignError> {
        if index >= self.shards {
            return Err(CampaignError::ShardIndexOutOfRange {
                index,
                count: self.shards,
            });
        }
        Ok(())
    }
}

/// The shard section of a `scdp.campaign.report/v4` document: which
/// slice of which partition this partial report covers, plus the
/// configuration fingerprint that guards merges and resumes against
/// mixing checkpoints from different campaigns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// This shard's index in the plan.
    pub index: u32,
    /// Number of shards in the plan.
    pub count: u32,
    /// First universe index covered (inclusive).
    pub fault_start: u64,
    /// One past the last universe index covered.
    pub fault_end: u64,
    /// Size of the whole (unsharded) fault universe.
    pub total_faults: u64,
    /// Fingerprint of the campaign configuration — scenario, backend,
    /// fault model, input plan, drop policy, duration — shared by every
    /// shard of one sweep ([`config_fingerprint`]).
    pub plan_hash: u64,
}

/// The canonical fingerprint part of an input space (stable labels,
/// never `Debug` output).
#[must_use]
pub(crate) fn space_part(space: scdp_coverage::InputSpace) -> String {
    match space {
        scdp_coverage::InputSpace::Exhaustive => "exhaustive".to_string(),
        scdp_coverage::InputSpace::Sampled { per_fault, seed } => {
            format!("sampled:{per_fault}:{seed}")
        }
    }
}

/// FNV-1a (64-bit) over the canonical campaign-configuration parts —
/// the one fingerprint construction shared by the campaign specs
/// (which stamp it into [`ShardInfo::plan_hash`] and use it to decide
/// whether an existing checkpoint belongs to the sweep being resumed)
/// and by [`crate::CampaignReport::merge`]'s consistency checks.
///
/// Parts are hashed with a separator so `["ab", "c"]` and `["a", "bc"]`
/// differ; callers pass label-stable serialisations, never `Debug`
/// output.
#[must_use]
pub fn config_fingerprint<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        for b in part.as_bytes() {
            fold(*b);
        }
        fold(0x1f); // unit separator between parts
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_universe_for_any_shard_count() {
        for total in [0u64, 1, 7, 64, 1422, 100_003] {
            for shards in [1u32, 2, 3, 4, 7, 64, 1000] {
                let plan = ShardPlan::new(total, shards).expect("valid");
                let mut cursor = 0u64;
                let mut sizes = Vec::new();
                for i in 0..shards {
                    let r = plan.range(i);
                    assert_eq!(r.start, cursor, "ranges must tile ({total}/{shards})");
                    cursor = r.end;
                    sizes.push(r.end - r.start);
                }
                assert_eq!(cursor, total);
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced split ({total}/{shards})");
            }
        }
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        assert_eq!(ShardPlan::new(10, 0), Err(CampaignError::ZeroShards));
        let plan = ShardPlan::new(10, 3).unwrap();
        assert!(plan.check_index(2).is_ok());
        assert_eq!(
            plan.check_index(3),
            Err(CampaignError::ShardIndexOutOfRange { index: 3, count: 3 })
        );
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.total_faults(), 10);
    }

    #[test]
    fn fingerprint_separates_parts_and_is_stable() {
        let a = config_fingerprint(["ab", "c"]);
        let b = config_fingerprint(["a", "bc"]);
        assert_ne!(a, b, "part boundaries must matter");
        assert_eq!(a, config_fingerprint(["ab", "c"]), "deterministic");
        assert_ne!(config_fingerprint([]), config_fingerprint([""]));
    }
}
