//! Structural netlist lints.
//!
//! Elaboration bugs — floating nets, dead logic, alarms that can never
//! fire — historically surfaced only as downstream tally divergences
//! after minutes of fault simulation. These checks push them to
//! elaboration time, before a single vector runs:
//!
//! * unconnected required pins (a `dff()` whose `connect_dff` never
//!   ran, hand-built IR with missing operands) — **error**;
//! * combinational cycles / non-topological reads — **error**;
//! * a constant alarm output (a checker that cannot fire) — **error**;
//! * dangling nets (driven, never read, not an output) — warning;
//! * constant-foldable dead logic — warning in strict mode, **waived
//!   with a reason** by default: datapath elaboration deliberately ties
//!   inactive mux legs to a constant-zero bus and drives mux selects
//!   from per-instance constants (the PR-5 divergence pin), so these
//!   are expected;
//! * gates with no structural path to any alarm output (faults there
//!   can never be *detected*, only silent or escaped) — warning, only
//!   on netlists that declare an `error` output bus. Reachability is
//!   Dff-aware: the alarm cone traverses D-pin edges, so sticky-alarm
//!   registers in sequential datapaths do not hide their cone.

use scdp_netlist::{GateKind, Netlist};

/// How serious a [`Diagnostic`] is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Structural bug; `scdp lint` exits nonzero.
    Error,
    /// Suspicious but not fatal.
    Warning,
    /// Matched a known-benign pattern; kept visible with its reason.
    Waived,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Waived => "waived",
        }
    }
}

/// One finding of [`lint`].
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `dead-logic`).
    pub code: &'static str,
    /// Human-readable description, including the waive reason when
    /// [`Severity::Waived`].
    pub message: String,
    /// Gate (= net) index the finding anchors to, when there is one.
    pub gate: Option<usize>,
}

/// Knobs for [`lint`].
#[derive(Copy, Clone, Debug, Default)]
pub struct LintOptions {
    /// Report constant-foldable dead logic as warnings instead of
    /// waiving the known-benign zero-tied mux-leg pattern.
    pub strict: bool,
}

/// Outcome of linting one netlist.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Design name.
    pub name: String,
    /// Total gate count of the linted netlist.
    pub gates: usize,
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of waived findings.
    #[must_use]
    pub fn waived(&self) -> usize {
        self.count(Severity::Waived)
    }

    /// `true` when nothing reached error severity.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Human-readable rendering: a one-line summary (always containing
    /// `N errors`) followed by one line per error/warning finding.
    /// Waived findings — routinely in the hundreds on elaborated
    /// datapaths — are aggregated to one line per code, keeping the
    /// waiver reason without drowning the real findings.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "lint {}: {} gates — {} errors, {} warnings, {} waived\n",
            self.name,
            self.gates,
            self.errors(),
            self.warnings(),
            self.waived()
        );
        for d in &self.diagnostics {
            if d.severity == Severity::Waived {
                continue;
            }
            let at = d.gate.map_or(String::new(), |g| format!(" gate {g}"));
            out.push_str(&format!(
                "  {}[{}]{}: {}\n",
                d.severity.label(),
                d.code,
                at,
                d.message
            ));
        }
        let mut seen: Vec<&'static str> = Vec::new();
        for d in &self.diagnostics {
            if d.severity != Severity::Waived || seen.contains(&d.code) {
                continue;
            }
            seen.push(d.code);
            let count = self
                .diagnostics
                .iter()
                .filter(|x| x.severity == Severity::Waived && x.code == d.code)
                .count();
            let reason = d
                .message
                .split_once("(waived:")
                .map_or("", |(_, r)| r.trim_end_matches(')'))
                .trim();
            out.push_str(&format!("  waived[{}] ×{count}: {reason}\n", d.code));
        }
        out
    }

    /// JSON rendering (object with summary counts and a `diagnostics`
    /// array), hand-rolled like the rest of the workspace.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":{},\"gates\":{},\"errors\":{},\"warnings\":{},\"waived\":{},\"diagnostics\":[",
            json_str(&self.name),
            self.gates,
            self.errors(),
            self.warnings(),
            self.waived()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let gate = d.gate.map_or("null".to_string(), |g| g.to_string());
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"code\":\"{}\",\"gate\":{},\"message\":{}}}",
                d.severity.label(),
                d.code,
                gate,
                json_str(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs every structural check over `netlist`.
#[must_use]
pub fn lint(netlist: &Netlist, opts: &LintOptions) -> LintReport {
    let gates = netlist.gates();
    let readers = netlist.readers();
    let mut diags = Vec::new();

    // 1. Required pins present.
    for (i, g) in gates.iter().enumerate() {
        let needed = g.kind.pins();
        let missing = (needed >= 1 && g.a.is_none()) || (needed >= 2 && g.b.is_none());
        if missing {
            let what = if g.kind == GateKind::Dff {
                "Dff D input never connected (connect_dff missing)".to_string()
            } else {
                format!("{:?} gate is missing an operand", g.kind)
            };
            diags.push(Diagnostic {
                severity: Severity::Error,
                code: "unconnected-pin",
                message: what,
                gate: Some(i),
            });
        }
    }

    // 2. Combinational topology: every non-Dff gate must read
    // already-defined nets (Dff D-pins may legally look forward).
    for (i, g) in gates.iter().enumerate() {
        if g.kind == GateKind::Dff {
            continue;
        }
        for n in [g.a, g.b].into_iter().flatten() {
            if n.index() >= i {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "combinational-cycle",
                    message: format!(
                        "combinational gate reads net {} defined at or after itself",
                        n.index()
                    ),
                    gate: Some(i),
                });
            }
        }
    }

    // 3. Dangling nets: driven, never read, not an output.
    for (i, g) in gates.iter().enumerate() {
        if readers[i].is_empty() && !netlist.is_output_net(i) {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: "dangling-net",
                message: format!(
                    "net driven by {:?} gate is never read and not an output",
                    g.kind
                ),
                gate: Some(i),
            });
        }
    }

    // 4. Constant propagation → dead logic.
    let consts = propagate_constants(netlist);
    for (i, g) in gates.iter().enumerate() {
        if matches!(g.kind, GateKind::Input | GateKind::Const(_) | GateKind::Dff) {
            continue;
        }
        if let Some(v) = consts[i] {
            let (severity, reason) = if opts.strict {
                (Severity::Warning, String::new())
            } else {
                (
                    Severity::Waived,
                    " (waived: datapath elaboration ties inactive mux legs to the \
                     constant-zero bus and drives selects from per-instance constants; \
                     known-benign dead logic)"
                        .to_string(),
                )
            };
            diags.push(Diagnostic {
                severity,
                code: "dead-logic",
                message: format!(
                    "{:?} gate output is constant {}{}",
                    g.kind,
                    u8::from(v),
                    reason
                ),
                gate: Some(i),
            });
        }
    }

    // 5+6. Alarm checks, only on netlists that declare an alarm.
    if let Some((_, alarm)) = netlist.outputs().iter().find(|(n, _)| n == "error") {
        // 5. A constant alarm can never fire (or never stop firing).
        for net in alarm {
            if let Some(v) = consts[net.index()] {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    code: "constant-alarm",
                    message: format!("alarm output is constant {}", u8::from(v)),
                    gate: Some(net.index()),
                });
            }
        }
        // 6. Gates outside the alarm's structural cone are invisible to
        // every checker: faults there can never be detected.
        let reachable = alarm_cone(netlist, alarm.iter().map(|n| n.index()));
        for (i, g) in gates.iter().enumerate() {
            if matches!(g.kind, GateKind::Input | GateKind::Const(_)) {
                continue;
            }
            if !reachable[i] && consts[i].is_none() {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "unobservable-by-checker",
                    message: format!(
                        "no structural path from {:?} gate to any alarm output",
                        g.kind
                    ),
                    gate: Some(i),
                });
            }
        }
    }

    LintReport {
        name: netlist.name().to_string(),
        gates: gates.len(),
        diagnostics: diags,
    }
}

/// Forward constant propagation. Dff outputs are treated as unknown
/// (state starts at 0 but may change), so sticky alarms stay
/// non-constant. Shared with the collapser: a stuck-at on a net that
/// already holds that constant is redundant (its faulty function *is*
/// the fault-free function).
pub(crate) fn propagate_constants(netlist: &Netlist) -> Vec<Option<bool>> {
    let gates = netlist.gates();
    let mut consts: Vec<Option<bool>> = vec![None; gates.len()];
    for (i, g) in gates.iter().enumerate() {
        let a = g.a.and_then(|n| consts.get(n.index()).copied().flatten());
        let b = g.b.and_then(|n| consts.get(n.index()).copied().flatten());
        consts[i] = match g.kind {
            GateKind::Const(v) => Some(v),
            GateKind::Input | GateKind::Dff => None,
            GateKind::And => force(a, b, false, false).or(binop(a, b, |x, y| x & y)),
            GateKind::Or => force(a, b, true, true).or(binop(a, b, |x, y| x | y)),
            GateKind::Nand => force(a, b, false, true).or(binop(a, b, |x, y| !(x & y))),
            GateKind::Nor => force(a, b, true, false).or(binop(a, b, |x, y| !(x | y))),
            GateKind::Xor => binop(a, b, |x, y| x ^ y),
            GateKind::Xnor => binop(a, b, |x, y| !(x ^ y)),
            GateKind::Not => a.map(|x| !x),
            GateKind::Buf => a,
        };
    }
    consts
}

/// `Some(out)` when either operand holds the forcing value.
fn force(a: Option<bool>, b: Option<bool>, forcing: bool, out: bool) -> Option<bool> {
    (a == Some(forcing) || b == Some(forcing)).then_some(out)
}

fn binop(a: Option<bool>, b: Option<bool>, f: impl Fn(bool, bool) -> bool) -> Option<bool> {
    Some(f(a?, b?))
}

/// Reverse reachability from the alarm nets through gate reads,
/// including Dff D-pin edges (the cone crosses state boundaries).
fn alarm_cone(netlist: &Netlist, alarm: impl Iterator<Item = usize>) -> Vec<bool> {
    let gates = netlist.gates();
    let mut reachable = vec![false; gates.len()];
    let mut stack: Vec<usize> = alarm.collect();
    while let Some(n) = stack.pop() {
        if reachable[n] {
            continue;
        }
        reachable[n] = true;
        for net in [gates[n].a, gates[n].b].into_iter().flatten() {
            stack.push(net.index());
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_netlist::NetlistBuilder;

    #[test]
    fn clean_netlist_has_no_findings() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let y = b.xor(a[0], a[1]);
        b.output("y", &[y]);
        let report = lint(&b.finish(), &LintOptions::default());
        assert!(report.is_clean());
        assert!(report.diagnostics.is_empty());
        assert!(report.render().contains("0 errors"));
    }

    // `unconnected-pin` / `combinational-cycle` are defense-in-depth
    // for IR that bypasses NetlistBuilder (which enforces both at
    // `finish()`); a connected Dff must stay silent.
    #[test]
    fn connected_dff_has_no_pin_findings() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let q = b.dff();
        b.connect_dff(q, a);
        b.output("y", &[q]);
        let report = lint(&b.finish(), &LintOptions::default());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != "unconnected-pin" && d.code != "combinational-cycle"));
    }

    #[test]
    fn dangling_net_is_a_warning() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let _dead = b.and(a[0], a[1]);
        let y = b.or(a[0], a[1]);
        b.output("y", &[y]);
        let report = lint(&b.finish(), &LintOptions::default());
        assert!(report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "dangling-net" && d.severity == Severity::Warning));
    }

    #[test]
    fn dead_logic_waived_by_default_warning_in_strict() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let zero = b.constant(false);
        let y = b.and(a, zero);
        b.output("y", &[y]);
        let n = b.finish();
        let relaxed = lint(&n, &LintOptions::default());
        assert!(relaxed.is_clean());
        assert!(relaxed
            .diagnostics
            .iter()
            .any(|d| d.code == "dead-logic" && d.severity == Severity::Waived));
        let strict = lint(&n, &LintOptions { strict: true });
        assert!(strict
            .diagnostics
            .iter()
            .any(|d| d.code == "dead-logic" && d.severity == Severity::Warning));
    }

    #[test]
    fn constant_alarm_is_an_error() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let y = b.xor(a[0], a[1]);
        let zero = b.constant(false);
        let alarm = b.buf(zero);
        b.output("y", &[y]);
        b.output("error", &[alarm]);
        let report = lint(&b.finish(), &LintOptions::default());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "constant-alarm" && d.severity == Severity::Error));
        assert!(!report.is_clean());
    }

    #[test]
    fn unobservable_gate_flagged_only_with_alarm_present() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 2);
        let seen = b.xor(a[0], a[1]);
        let unseen = b.or(a[0], a[1]);
        b.output("y", &[unseen]);
        b.output("error", &[seen]);
        let report = lint(&b.finish(), &LintOptions::default());
        let hits: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "unobservable-by-checker")
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].gate, Some(unseen.index()));
    }

    #[test]
    fn alarm_cone_crosses_dff_edges() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input_bus("a", 1)[0];
        let q = b.dff();
        let d = b.buf(a);
        b.connect_dff(q, d);
        let alarm = b.buf(q);
        b.output("error", &[alarm]);
        let report = lint(&b.finish(), &LintOptions::default());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code != "unobservable-by-checker"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let mut b = NetlistBuilder::new("t\"name");
        let a = b.input_bus("a", 1)[0];
        let q = b.dff();
        b.connect_dff(q, a);
        b.output("y", &[q]);
        let report = lint(&b.finish(), &LintOptions::default());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"name"));
        assert!(json.contains("\"errors\":0"));
    }
}
