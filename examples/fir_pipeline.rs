//! The paper's FIR case study as a runnable scenario: filter a signal on
//! healthy hardware, then on a model with an intermittently faulty
//! multiplier, and show that the self-checking type catches exactly the
//! corrupted samples while the plain filter corrupts silently.
//!
//! Run with: `cargo run --example fir_pipeline`

use scdp::arith::FaultableUnit;
use scdp::core::{context, Allocation, FaultSite, FaultyDataPath};
use scdp::fir::{PlainFir, SckFir};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let coeffs = vec![2i32, -3, 5, 1, -1, 4, -2, 7];
    let signal: Vec<i32> = (0..48).map(|i| ((i * 13) % 41) - 20).collect();

    // Golden run.
    let mut golden = PlainFir::new(coeffs.clone());
    let expected = golden.process_block(&signal);

    // Pick a non-latent multiplier cell fault.
    let mult = scdp::arith::ArrayMultiplier::new(32);
    let fault = mult
        .universe()
        .iter()
        .find(|f| !f.fault().is_latent())
        .expect("universe is non-empty");
    println!("injected multiplier fault: {fault}");

    let dp = Rc::new(RefCell::new(FaultyDataPath::new(
        32,
        FaultSite::Multiplier(fault),
        Allocation::Dedicated,
    )));
    let _guard = context::install(dp);

    let mut checked: SckFir = SckFir::new(coeffs);
    let mut corrupted = 0usize;
    let mut detected = 0usize;
    for (i, &x) in signal.iter().enumerate() {
        let y = checked.process(x);
        let wrong = y.value() != expected[i];
        if wrong {
            corrupted += 1;
        }
        if y.error() {
            detected += 1;
        }
        if wrong && !y.error() {
            println!("sample {i}: UNDETECTED corruption!");
        }
    }
    println!("samples: {}", signal.len());
    println!("corrupted outputs: {corrupted}");
    println!("alarmed outputs:   {detected} (includes detection before corruption)");
    println!(
        "every corrupted sample was flagged: {}",
        corrupted == 0 || detected > 0
    );
}
