//! Cycle-accurate datapath campaigns: the sequential companion of
//! [`DatapathCampaignSpec`](crate::DatapathCampaignSpec).
//!
//! The unrolled campaign approximates time-multiplexing with correlated
//! injection; this module runs the *real machine* — the shared-FU
//! sequential netlist of [`scdp_netlist::gen::elaborate_seq_datapath`]
//! — on the multi-cycle bit-parallel engine ([`scdp_sim::SeqEngine`]).
//! Two things only the sequential model can express appear here:
//!
//! * **fault durations** — permanent structural defects vs single-cycle
//!   transients ([`FaultDuration`]), selected per campaign;
//! * **detection latency** — every alarm records the cycle it first
//!   fired in, aggregated into a per-cycle histogram serialised in the
//!   report's `sequential` section (`scdp.campaign.report/v3`).
//!
//! # Example
//!
//! ```
//! use scdp_campaign::{DatapathScenario, DfgSource, FaultDuration, InputSpace};
//! use scdp_core::Technique;
//!
//! let report = DatapathScenario::new(DfgSource::Dot, 2)
//!     .technique(Technique::Tech1)
//!     .seq_campaign()
//!     .duration(FaultDuration::Permanent)
//!     .input_space(InputSpace::Sampled { per_fault: 128, seed: 7 })
//!     .exec(scdp_campaign::ExecPolicy::new().threads(2))
//!     .run()
//!     .expect("valid scenario");
//! let seq = report.sequential.as_ref().expect("sequential section");
//! assert_eq!(seq.first_detect_hist.len() as u64, seq.total_cycles);
//! ```

use crate::datapath::{datapath_fingerprint, datapath_input_plan, style_label, DatapathScenario};
use crate::error::CampaignError;
use crate::obs::RunCtx;
use crate::report::{
    duration_label, CampaignReport, DatapathDetails, DeduceDetails, FaultRecord, FuTally,
    SequentialDetails,
};
use crate::scenario::{Backend, FaultModel};
use crate::shard::{ShardInfo, ShardPlan};
use crate::spec::{ExecPolicy, MAX_WIDTH};
use scdp_coverage::Tally;
use scdp_hls::{bind, sched, BindOptions, ComponentLibrary};
use scdp_netlist::gen::{class_label, elaborate_seq_datapath, SeqDatapath};
use scdp_netlist::FaultDuration;
use scdp_obs::EventSink;
use scdp_sim::{DropPolicy, SeqCampaign, SeqEngine, SeqFaultGroup, SeqFaultOutcome};
use std::fmt;

impl DatapathScenario {
    /// Runs the synthesis front half — expansion, list scheduling,
    /// binding — and elaborates the result to one cycle-accurate
    /// shared-FU netlist.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=32`; use
    /// [`SeqDatapathCampaignSpec::run`] for validated, typed-error
    /// entry.
    #[must_use]
    pub fn elaborate_seq(&self) -> SeqDatapath {
        let dfg = self.expanded();
        let lib = ComponentLibrary::virtex16();
        let schedule = sched::list_schedule(&dfg, &lib, &self.resources);
        let opts = BindOptions {
            separate_checkers: self.allocation == scdp_core::Allocation::Dedicated,
            no_sharing: false,
        };
        let binding = bind(&dfg, &schedule, &lib, opts);
        elaborate_seq_datapath(&dfg, &schedule, &binding, self.width)
    }

    /// Starts a cycle-accurate [`SeqDatapathCampaignSpec`] for this
    /// scenario.
    #[must_use]
    pub fn seq_campaign(self) -> SeqDatapathCampaignSpec {
        SeqDatapathCampaignSpec::new(self)
    }
}

/// Configures *how* a [`DatapathScenario`] is analysed cycle-accurately
/// and runs it on the sequential bit-parallel engine.
#[derive(Clone)]
pub struct SeqDatapathCampaignSpec {
    /// The scenario under analysis.
    pub scenario: DatapathScenario,
    /// How long injected faults stay active.
    pub duration: FaultDuration,
    /// The input-space strategy.
    pub space: scdp_coverage::InputSpace,
    /// How the campaign executes: threads, lanes, dropping, collapsing,
    /// telemetry.
    pub exec: ExecPolicy,
    /// Restricts the run to one shard of the fault universe:
    /// `(index, count)` of a [`ShardPlan`]. `None` runs everything.
    pub shard: Option<(u32, u32)>,
    /// Optional structured event sink ([`scdp_obs::ObsEvent`] stream).
    pub events: Option<EventSink>,
}

impl fmt::Debug for SeqDatapathCampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqDatapathCampaignSpec")
            .field("scenario", &self.scenario)
            .field("duration", &self.duration)
            .field("space", &self.space)
            .field("exec", &self.exec)
            .field("shard", &self.shard)
            .field("events", &self.events.as_ref().map(|_| ".."))
            .finish()
    }
}

impl SeqDatapathCampaignSpec {
    /// Starts a campaign with permanent faults, exhaustive inputs and
    /// the default [`ExecPolicy`].
    #[must_use]
    pub fn new(scenario: DatapathScenario) -> Self {
        Self {
            scenario,
            duration: FaultDuration::Permanent,
            space: scdp_coverage::InputSpace::Exhaustive,
            exec: ExecPolicy::new(),
            shard: None,
            events: None,
        }
    }

    /// Selects the fault duration (validated against the elaborated
    /// cycle count by [`SeqDatapathCampaignSpec::run`]).
    #[must_use]
    pub fn duration(mut self, duration: FaultDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Selects the input space.
    #[must_use]
    pub fn input_space(mut self, space: scdp_coverage::InputSpace) -> Self {
        self.space = space;
        self
    }

    /// Replaces the execution policy wholesale: threads, lanes, drop
    /// policy, collapsing and telemetry in one value. This supersedes
    /// the per-knob setters (`threads`, `drop_policy`, `collapse`,
    /// `telemetry`), which remain as deprecated shims.
    #[must_use]
    pub fn exec(mut self, exec: ExecPolicy) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the drop policy.
    #[deprecated(
        since = "0.1.0",
        note = "use `exec(ExecPolicy::new().drop_policy(..))`"
    )]
    #[must_use]
    pub fn drop_policy(mut self, drop: DropPolicy) -> Self {
        self.exec.drop = drop;
        self
    }

    /// Caps the worker thread count (validated by
    /// [`SeqDatapathCampaignSpec::run`]).
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().threads(..))`")]
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.exec.threads = Some(threads);
        self
    }

    /// Restricts the run to shard `index` of a `count`-way
    /// [`ShardPlan`] over the fault universe (validated by
    /// [`SeqDatapathCampaignSpec::run`]). The report then carries a
    /// `shard` section (`scdp.campaign.report/v4`); merging all
    /// `count` shards reproduces the unsharded report — tallies,
    /// per-fault outcomes *and* the latency histogram — bit for bit.
    #[must_use]
    pub fn shard(mut self, index: u32, count: u32) -> Self {
        self.shard = Some((index, count));
        self
    }

    /// Collapses the fault universe into equivalence classes before
    /// simulation ([`scdp_analyze::CollapsedUniverse`]): one
    /// representative group per class is simulated and its verdict
    /// fanned back out, leaving every report field bit-identical to
    /// the uncollapsed run — including the per-fault rows, per-FU
    /// tallies and the detection-latency histogram. Excluded from
    /// [`SeqDatapathCampaignSpec::config_fingerprint`], so collapsed
    /// and uncollapsed shards interchange.
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().collapse(..))`")]
    #[must_use]
    pub fn collapse(mut self, enabled: bool) -> Self {
        self.exec.collapse = enabled;
        self
    }

    /// Fingerprint of this campaign's configuration — stamped into
    /// [`ShardInfo::plan_hash`] by sharded runs so checkpoints from
    /// different campaigns can never be resumed or merged together.
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        datapath_fingerprint(
            "seq-datapath",
            &self.scenario,
            self.space,
            self.exec.drop,
            Some(duration_label(self.duration)),
        )
    }

    /// Installs a structured event sink, called on the driver thread
    /// with every [`scdp_obs::ObsEvent`] of the run.
    #[must_use]
    pub fn events(mut self, sink: EventSink) -> Self {
        self.events = Some(sink);
        self
    }

    /// Embeds a [`scdp_obs::TelemetrySnapshot`] (spans, counters,
    /// histograms) in the finished report's `telemetry` section.
    #[deprecated(since = "0.1.0", note = "use `exec(ExecPolicy::new().telemetry(..))`")]
    #[must_use]
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.exec.telemetry = enabled;
        self
    }

    fn validate(&self) -> Result<(), CampaignError> {
        if self.exec.threads == Some(0) {
            return Err(CampaignError::ZeroThreads);
        }
        if let Some((index, count)) = self.shard {
            if count == 0 {
                return Err(CampaignError::ZeroShards);
            }
            if index >= count {
                return Err(CampaignError::ShardIndexOutOfRange { index, count });
            }
        }
        Ok(())
    }

    fn start_ctx(&self) -> RunCtx {
        RunCtx::start(
            Backend::GateLevel,
            FaultModel::Structural,
            self.events.clone(),
            self.exec.telemetry,
        )
    }

    /// Runs the campaign: expand → schedule → bind → sequential
    /// elaboration → cycle-accurate bit-parallel simulation, with
    /// per-FU tallies in the report's `datapath` section and the
    /// detection-latency histogram in its `sequential` section
    /// (`scdp.campaign.report/v3`).
    ///
    /// # Errors
    ///
    /// Returns a typed [`CampaignError`] for invalid configurations:
    /// width out of range, zero threads, an exhaustive input space over
    /// more than [`crate::MAX_EXHAUSTIVE_INPUT_BITS`] primary input
    /// bits, or a transient cycle beyond the elaborated cycle count.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let s = &self.scenario;
        if s.width == 0 || s.width > MAX_WIDTH {
            return Err(CampaignError::WidthOutOfRange {
                width: s.width,
                max: MAX_WIDTH,
            });
        }
        self.validate()?;
        let ctx = self.start_ctx();
        let elaborate = ctx.span("elaborate");
        let dp = s.elaborate_seq();
        elaborate.close();
        self.run_with(&dp, ctx)
    }

    /// Runs the campaign on a machine elaborated earlier with
    /// [`DatapathScenario::elaborate_seq`], skipping the synthesis
    /// front half — for sweeps that run several durations or input
    /// spaces over the same scenario (the elaboration must come from
    /// this spec's scenario).
    ///
    /// # Errors
    ///
    /// As [`SeqDatapathCampaignSpec::run`], minus the width check the
    /// elaboration already enforced.
    pub fn run_on(&self, dp: &SeqDatapath) -> Result<CampaignReport, CampaignError> {
        self.validate()?;
        self.run_with(dp, self.start_ctx())
    }

    fn run_with(&self, dp: &SeqDatapath, ctx: RunCtx) -> Result<CampaignReport, CampaignError> {
        let s = &self.scenario;
        let plan = datapath_input_plan(self.space, dp.netlist.input_bits())?;
        if let FaultDuration::Transient { cycle } = self.duration {
            if cycle >= dp.total_cycles {
                return Err(CampaignError::TransientCycleOutOfRange {
                    cycle,
                    total_cycles: dp.total_cycles,
                });
            }
        }
        let compile = ctx.span("compile");
        let (groups, ranges) = dp.fault_universe();
        let engine = SeqEngine::try_new(&dp.netlist).map_err(|e| CampaignError::FaultSpec {
            message: e.to_string(),
        })?;
        compile.close();
        ctx.netlist_compiled(dp.netlist.name(), dp.netlist.gate_count(), groups.len());

        let universe = groups.len() as u64;
        let shard = match self.shard {
            None => None,
            Some((index, count)) => {
                let sp = ShardPlan::new(universe, count)?;
                sp.check_index(index)?;
                let range = sp.range(index);
                Some(ShardInfo {
                    index,
                    count,
                    fault_start: range.start,
                    fault_end: range.end,
                    total_faults: sp.total_faults(),
                    plan_hash: self.config_fingerprint(),
                })
            }
        };
        let covered = shard.map_or(0..universe, |sh| sh.fault_start..sh.fault_end);
        let collapse_plan = self
            .exec
            .collapse
            .then(|| crate::collapse::CollapsePlan::build(&dp.netlist, &groups, covered.clone()));
        if let Some(p) = &collapse_plan {
            ctx.record_collapse(groups.len(), p.rep_groups.len(), p.classes_total);
        }
        let sim_groups = match &collapse_plan {
            Some(p) => p.rep_groups.clone(),
            None => groups,
        };
        // Deductive pruning on the sequential machine settles
        // untestability proofs only: each skipped group takes the
        // fault-free baseline trace (valid per cycle, for permanent and
        // transient durations alike — see `scdp_analyze::deduce`).
        // Dominance deferral needs a combinational netlist, so
        // `PrunePlan` yields no deferred pairs here.
        let ranged = shard.is_some() && collapse_plan.is_none();
        let scope = if ranged {
            covered.start as usize..covered.end as usize
        } else {
            0..sim_groups.len()
        };
        let prune_plan = self.exec.prune.then(|| {
            let span = ctx.span("deduce");
            let pp = crate::prune::PrunePlan::build(&dp.netlist, &sim_groups, scope.clone());
            span.close();
            pp
        });
        let sim_groups: Vec<SeqFaultGroup> = sim_groups
            .into_iter()
            .map(|lines| SeqFaultGroup::new(lines, self.duration))
            .collect();
        let mut campaign = SeqCampaign::new(&engine, sim_groups, dp.total_cycles)
            .plan(plan)
            .drop_policy(self.exec.drop)
            .lanes(self.exec.lanes);
        if let Some(pp) = &prune_plan {
            campaign = campaign.skip_resolved(pp.skip());
        }
        if let Some(rec) = ctx.recorder() {
            campaign = campaign.recorder(rec);
        }
        if let Some(t) = self.exec.threads {
            campaign = campaign.threads(t);
        }
        if let (Some(sh), None) = (&shard, &collapse_plan) {
            // Representatives are explicit groups under collapsing; the
            // engine-level range applies to uncollapsed shards only.
            campaign = campaign.fault_range(sh.fault_start as usize..sh.fault_end as usize);
        }
        campaign.check().map_err(|e| CampaignError::FaultSpec {
            message: e.to_string(),
        })?;
        let sim = ctx.span("simulate");
        let summary = campaign.run();
        sim.close();

        let mut deduce = None;
        if let Some(pp) = &prune_plan {
            let mut deduced = vec![false; scope.len()];
            for &u in &pp.untestable {
                deduced[u - scope.start] = true;
            }
            let untestable = pp.untestable.len() as u64;
            let simulated_groups = scope.len() as u64 - untestable;
            ctx.record_deduce(untestable, 0, simulated_groups);
            let rows = match &collapse_plan {
                Some(p) => p
                    .slot_of
                    .iter()
                    .enumerate()
                    .filter(|&(_, &s)| deduced[s])
                    .map(|(i, _)| i as u64)
                    .collect(),
                None => deduced
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d)
                    .map(|(i, _)| i as u64)
                    .collect(),
            };
            deduce = Some(DeduceDetails {
                untestable,
                dominated: 0,
                simulated: simulated_groups,
                rows,
            });
        }

        let tally_span = ctx.span("tally");
        // Fan each representative's verdict back out to every covered
        // member; the aggregates below are then recomputed from the
        // fanned rows exactly the way the engine computes them, so the
        // collapsed report is bit-identical to the uncollapsed one.
        let fanned: Vec<&SeqFaultOutcome> = match &collapse_plan {
            Some(p) => p.slot_of.iter().map(|&s| &summary.per_fault[s]).collect(),
            None => summary.per_fault.iter().collect(),
        };
        let per_fault: Vec<FaultRecord> = fanned
            .iter()
            .map(|f| FaultRecord {
                tally: f.outcome.tally,
                detected: f.outcome.detected,
                escaped: f.outcome.escaped,
                dropped_after: f.outcome.dropped_after,
            })
            .collect();
        let mut agg = scdp_coverage::TechTally::default();
        let mut simulated = 0u64;
        let mut first_detect_hist = vec![0u64; dp.total_cycles as usize];
        for f in &fanned {
            agg += f.outcome.tally;
            simulated += f.outcome.tally.total();
            for (h, n) in first_detect_hist.iter_mut().zip(&f.first_detect) {
                *h += n;
            }
        }
        let per_fu: Vec<FuTally> = ranges
            .iter()
            .map(|r| {
                let span = &dp.fus[r.fu];
                let mut tally = scdp_coverage::TechTally::default();
                let mut detected = 0u64;
                let mut escaped = 0u64;
                // Intersect the unit's universe range with the covered
                // (shard) range; `per_fault` is indexed shard-locally.
                let lo = (r.start as u64).max(covered.start);
                let hi = (r.end as u64).min(covered.end);
                for i in lo..hi {
                    let f = &per_fault[(i - covered.start) as usize];
                    tally += f.tally;
                    detected += u64::from(f.detected);
                    escaped += u64::from(f.escaped);
                }
                FuTally {
                    name: span.name.clone(),
                    class: class_label(span.class).to_string(),
                    role: crate::datapath::role_label(span.role).to_string(),
                    ops: span.ops.len() as u64,
                    instances: u64::from(span.instance.is_some()),
                    instance_gates: span.instance_gates() as u64,
                    faults: hi.saturating_sub(lo),
                    tally,
                    detected,
                    escaped,
                }
            })
            .collect();

        let selected = s.tech_index();
        let mut tally = Tally::default();
        tally.tech[selected as usize] = agg;
        let details = DatapathDetails {
            source: s.source.label(),
            style: style_label(s.style).to_string(),
            nodes: dp.nodes as u64,
            schedule_length: u64::from(dp.schedule_length),
            registers: dp.registers as u64,
            mux_legs: dp.mux_legs as u64,
            gates: dp.netlist.gate_count() as u64,
            per_fu,
        };
        let sequential = SequentialDetails {
            duration: self.duration,
            total_cycles: u64::from(dp.total_cycles),
            first_detect_hist,
        };
        tally_span.close();
        let mut report = CampaignReport {
            scenario: s.placeholder_scenario(),
            backend: Backend::GateLevel,
            fault_model: FaultModel::Structural,
            space: self.space,
            drop: self.exec.drop,
            tally,
            filled: vec![selected],
            per_fault,
            simulated,
            elapsed_ms: 0,
            datapath: Some(details),
            sequential: Some(sequential),
            shard,
            deduce,
            telemetry: None,
        };
        ctx.finish(&mut report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::DfgSource;
    use scdp_core::Technique;
    use scdp_coverage::InputSpace;

    fn quick(source: DfgSource, duration: FaultDuration) -> CampaignReport {
        DatapathScenario::new(source, 2)
            .technique(Technique::Tech1)
            .seq_campaign()
            .duration(duration)
            .input_space(InputSpace::Sampled {
                per_fault: 128,
                seed: 0x5E9,
            })
            .exec(ExecPolicy::new().threads(2))
            .run()
            .expect("campaign runs")
    }

    #[test]
    fn sequential_section_is_consistent() {
        let r = quick(DfgSource::Fir, FaultDuration::Permanent);
        let seq = r.sequential.as_ref().expect("sequential section");
        assert_eq!(seq.first_detect_hist.len() as u64, seq.total_cycles);
        let detected: u64 = seq.first_detect_hist.iter().sum();
        let t = r.four_way();
        assert_eq!(
            detected,
            t.correct_detected + t.error_detected,
            "histogram sums to the detected situations"
        );
        assert!(seq.mean_detection_latency().is_some());
        let dp = r.datapath.as_ref().expect("datapath section");
        assert!(dp.per_fu.iter().all(|fu| fu.instances <= 1));
    }

    #[test]
    fn per_fu_tallies_sum_to_the_aggregate() {
        let r = quick(DfgSource::Dot, FaultDuration::Permanent);
        let dp = r.datapath.as_ref().expect("datapath section");
        let mut sum = scdp_coverage::TechTally::default();
        let mut faults = 0u64;
        for fu in &dp.per_fu {
            sum += fu.tally;
            faults += fu.faults;
        }
        assert_eq!(sum, *r.four_way());
        assert_eq!(faults, r.fault_count());
    }

    #[test]
    fn transients_are_milder_than_permanents() {
        let perm = quick(DfgSource::Dot, FaultDuration::Permanent);
        let wrong = |r: &CampaignReport| {
            let t = r.four_way();
            t.error_detected + t.error_undetected
        };
        let cycles = perm.sequential.as_ref().unwrap().total_cycles as u32;
        let mut any_corruption = false;
        for cycle in 0..cycles {
            let tran = quick(DfgSource::Dot, FaultDuration::Transient { cycle });
            assert!(
                wrong(&tran) < wrong(&perm),
                "a single-cycle upset at cycle {cycle} must corrupt fewer situations \
                 ({} vs {})",
                wrong(&tran),
                wrong(&perm)
            );
            any_corruption |= wrong(&tran) > 0;
        }
        assert!(any_corruption, "some transient cycle must corrupt results");
    }

    #[test]
    fn validation_is_typed() {
        let err = DatapathScenario::new(DfgSource::Fir, 0)
            .seq_campaign()
            .run()
            .unwrap_err();
        assert!(matches!(err, CampaignError::WidthOutOfRange { .. }));

        let err = DatapathScenario::new(DfgSource::Fir, 4)
            .seq_campaign()
            .exec(ExecPolicy::new().threads(0))
            .run()
            .unwrap_err();
        assert_eq!(err, CampaignError::ZeroThreads);

        let err = DatapathScenario::new(DfgSource::Iir, 8)
            .seq_campaign()
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::ExhaustiveDatapathTooLarge { input_bits } if input_bits > 24
        ));

        let err = DatapathScenario::new(DfgSource::Fir, 2)
            .seq_campaign()
            .duration(FaultDuration::Transient { cycle: 999 })
            .input_space(InputSpace::Sampled {
                per_fault: 16,
                seed: 1,
            })
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            CampaignError::TransientCycleOutOfRange { cycle: 999, .. }
        ));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let scenario = DatapathScenario::new(DfgSource::Dot, 2).technique(Technique::Both);
        let space = InputSpace::Sampled {
            per_fault: 128,
            seed: 11,
        };
        let a = scenario
            .clone()
            .seq_campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(1))
            .run()
            .unwrap();
        let b = scenario
            .seq_campaign()
            .input_space(space)
            .exec(ExecPolicy::new().threads(3))
            .run()
            .unwrap();
        assert!(a.same_results(&b));
        assert_eq!(a.sequential, b.sequential);
    }
}
