//! Property-based tests (proptest) over the core invariants of the
//! reproduction.

use proptest::prelude::*;
use scdp::arith::{ArrayMultiplier, RestoringDivider, RippleCarryAdder, Word};
use scdp::core::{checked_add, checked_mul, checked_sub, NativeDataPath};
use scdp::netlist::gen as netgen;
use scdp::{sck, Technique};

fn word(width: u32) -> impl Strategy<Value = Word> {
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    (0..=mask).prop_map(move |bits| Word::new(width, bits))
}

proptest! {
    /// Functional units match golden wrapping arithmetic at any width.
    #[test]
    fn units_match_golden(width in 1u32..=16, a_bits in any::<u64>(), b_bits in any::<u64>()) {
        let a = Word::new(width, a_bits);
        let b = Word::new(width, b_bits);
        let adder = RippleCarryAdder::new(width);
        prop_assert_eq!(adder.add(a, b, None), a.wrapping_add(b));
        prop_assert_eq!(adder.sub(a, b, None), a.wrapping_sub(b));
        let mult = ArrayMultiplier::new(width);
        prop_assert_eq!(mult.mul(a, b, None), a.wrapping_mul(b));
        if b.bits() != 0 {
            let div = RestoringDivider::new(width);
            let out = div.div_rem(a, b, None).unwrap();
            let (q, r) = a.wrapping_div_rem(b);
            prop_assert_eq!(out.quotient, q);
            prop_assert_eq!(out.remainder, r);
        }
    }

    /// Inverse-operation identities hold exactly under wrapping
    /// arithmetic — the foundation that makes the checks alarm-free on
    /// healthy hardware, even across overflow.
    #[test]
    fn no_false_alarms(width in 1u32..=16, a_bits in any::<u64>(), b_bits in any::<u64>()) {
        let a = Word::new(width, a_bits);
        let b = Word::new(width, b_bits);
        let mut dp = NativeDataPath::new();
        for tech in [Technique::Tech1, Technique::Tech2, Technique::Both] {
            prop_assert!(!checked_add(&mut dp, tech, a, b).error);
            prop_assert!(!checked_sub(&mut dp, tech, a, b).error);
            prop_assert!(!checked_mul(&mut dp, tech, a, b).error);
        }
    }

    /// The Sck type is value-transparent over whole expression trees.
    #[test]
    fn sck_transparent(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        let plain = a.wrapping_mul(b).wrapping_add(c).wrapping_sub(b);
        let checked = (sck(a) * sck(b) + sck(c)) - sck(b);
        prop_assert_eq!(checked.value(), plain);
        prop_assert!(!checked.error());
    }

    /// Sck division matches Rust semantics for non-zero divisors and
    /// flags zero divisors instead of panicking.
    #[test]
    fn sck_division(a in any::<i32>(), b in any::<i32>()) {
        let q = sck(a) / sck(b);
        let r = sck(a) % sck(b);
        if b == 0 {
            prop_assert!(q.error());
            prop_assert!(r.error());
        } else {
            prop_assert_eq!(q.value(), a.wrapping_div(b));
            prop_assert_eq!(r.value(), a.wrapping_rem(b));
            prop_assert!(!q.error());
        }
    }

    /// Generated netlists are equivalent to the functional units on
    /// random vectors (RCA, CLA, multiplier, divider).
    #[test]
    fn netlists_match_golden(a in word(8), b in word(8)) {
        let rca = netgen::rca(8);
        prop_assert_eq!(rca.eval_words(&[a, b], &[])[0], a.wrapping_add(b));
        let cla = netgen::cla(8);
        prop_assert_eq!(cla.eval_words(&[a, b], &[])[0], a.wrapping_add(b));
        let mult = netgen::array_mult(8);
        prop_assert_eq!(mult.eval_words(&[a, b], &[])[0], a.wrapping_mul(b));
        if b.bits() != 0 {
            let div = netgen::restoring_divider(8);
            let out = div.eval_words(&[a, b], &[]);
            prop_assert_eq!(out[0].bits(), a.bits() / b.bits());
            prop_assert_eq!(out[1].bits(), a.bits() % b.bits());
        }
    }

    /// Any single injected adder fault either leaves the result correct
    /// or (with a dedicated checker) raises the error — exhaustive
    /// detection, randomly probed.
    #[test]
    fn dedicated_checker_never_misses(
        pos in 0usize..8,
        site_idx in 0usize..16,
        stuck in any::<bool>(),
        a in word(8),
        b in word(8),
    ) {
        use scdp::core::{Allocation, FaultSite, FaultyDataPath};
        use scdp::fault::{FaGateFault, FaSite};
        let fault = FaultSite::adder_gate(pos, FaGateFault::new(FaSite::ALL[site_idx], stuck));
        let mut dp = FaultyDataPath::new(8, fault, Allocation::Dedicated);
        let c = checked_add(&mut dp, Technique::Tech1, a, b);
        if c.value != a.wrapping_add(b) {
            prop_assert!(c.error);
        }
    }

    /// The error bit is sticky: once set, any chain of operations keeps
    /// it set.
    #[test]
    fn error_bit_is_sticky(ops in proptest::collection::vec(any::<(u8, i32)>(), 1..20)) {
        use scdp::core::Sck;
        // Manufacture a poisoned value via division by zero.
        let mut v: Sck<i32> = sck(7) / sck(0);
        prop_assert!(v.error());
        for (op, operand) in ops {
            let rhs = sck(operand | 1); // avoid 0 divisors
            v = match op % 4 {
                0 => v + rhs,
                1 => v - rhs,
                2 => v * rhs,
                _ => v / rhs,
            };
        }
        prop_assert!(v.error(), "stickiness violated");
    }
}
