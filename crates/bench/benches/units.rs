//! Criterion bench for the cell-level functional units and the checked
//! operators: the per-operation cost of the simulation substrate
//! (relevant for sizing larger campaigns).

use criterion::{criterion_group, criterion_main, Criterion};
use scdp_arith::{ArrayMultiplier, RestoringDivider, RippleCarryAdder, Word};
use scdp_core::{checked_add, checked_mul, NativeDataPath, Technique};
use std::hint::black_box;

fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_units");
    let adder = RippleCarryAdder::new(16);
    let mult = ArrayMultiplier::new(16);
    let div = RestoringDivider::new(16);
    let a = Word::from_i64(16, 12345);
    let b = Word::from_i64(16, -678);
    group.bench_function("rca16_add", |bch| {
        bch.iter(|| black_box(adder.add(black_box(a), black_box(b), None)));
    });
    group.bench_function("mult16", |bch| {
        bch.iter(|| black_box(mult.mul(black_box(a), black_box(b), None)));
    });
    group.bench_function("div16", |bch| {
        bch.iter(|| black_box(div.div_rem(black_box(a), black_box(b), None)));
    });
    group.finish();
}

fn bench_checked_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("checked_ops");
    let a = Word::from_i64(32, 987_654);
    let b = Word::from_i64(32, -321);
    for tech in [Technique::Tech1, Technique::Both] {
        group.bench_function(format!("native_add_{tech}"), |bch| {
            let mut dp = NativeDataPath::new();
            bch.iter(|| black_box(checked_add(&mut dp, tech, black_box(a), black_box(b))));
        });
        group.bench_function(format!("native_mul_{tech}"), |bch| {
            let mut dp = NativeDataPath::new();
            bch.iter(|| black_box(checked_mul(&mut dp, tech, black_box(a), black_box(b))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_units, bench_checked_ops
}
criterion_main!(benches);
