//! Bench for the cell-level functional units, the checked operators and
//! the packed gate evaluator: the per-operation cost of the simulation
//! substrate (relevant for sizing larger campaigns).

use scdp_arith::{ArrayMultiplier, RestoringDivider, RippleCarryAdder, Word};
use scdp_bench::Bench;
use scdp_core::{checked_add, checked_mul, NativeDataPath, Technique};
use scdp_netlist::gen::self_checking;
use scdp_sim::{Engine, InputPlan};
use std::hint::black_box;

fn main() {
    let mut bench = Bench::new("units");

    let adder = RippleCarryAdder::new(16);
    let mult = ArrayMultiplier::new(16);
    let div = RestoringDivider::new(16);
    let a = Word::from_i64(16, 12345);
    let b = Word::from_i64(16, -678);
    bench.sample("rca16_add", 2000, || {
        black_box(adder.add(black_box(a), black_box(b), None))
    });
    bench.sample("mult16", 200, || {
        black_box(mult.mul(black_box(a), black_box(b), None))
    });
    bench.sample("div16", 200, || {
        black_box(div.div_rem(black_box(a), black_box(b), None))
    });

    let aw = Word::from_i64(32, 987_654);
    let bw = Word::from_i64(32, -321);
    for tech in [Technique::Tech1, Technique::Both] {
        let mut dp = NativeDataPath::new();
        bench.sample(&format!("native_add_{tech}"), 2000, || {
            black_box(checked_add(&mut dp, tech, black_box(aw), black_box(bw)))
        });
        let mut dp = NativeDataPath::new();
        bench.sample(&format!("native_mul_{tech}"), 2000, || {
            black_box(checked_mul(&mut dp, tech, black_box(aw), black_box(bw)))
        });
    }

    // One packed batch through the width-8 self-checking adder: 64
    // situations per eval.
    let dp = self_checking(scdp_netlist::gen::SelfCheckingSpec {
        op: scdp_core::Operator::Add,
        technique: Technique::Both,
        width: 8,
    });
    let engine = Engine::new(&dp.netlist);
    let batch = InputPlan::Exhaustive
        .stream(engine.input_bits())
        .next()
        .expect("one batch");
    let mut values = Vec::new();
    bench.sample_elements("engine_batch_w8", 2000, 64, &mut || {
        engine.eval_batch_into(black_box(&batch), &[], &mut values);
        black_box(values.len())
    });

    bench.finish();
}
