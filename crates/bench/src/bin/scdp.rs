//! The unified `scdp` CLI: `scdp run|merge|validate|table|sweep`.
//!
//! All logic lives in [`scdp_bench::scdp_cli`] so the wrapper binaries
//! (`table_datapath`, `table_seq`) and tests can drive it directly.

fn main() {
    std::process::exit(scdp_bench::scdp_cli::main_from_env());
}
