//! Shared command-line parsing for the table-regeneration binaries.
//!
//! Every binary used to hand-roll the same `--width/--samples/--seed/
//! --threads` parsing with slightly different defaults; this module is
//! the one place those knobs live, returning values the unified
//! `scdp-campaign` API consumes directly.

use scdp_campaign::InputSpace;
use scdp_sim::par;
use std::str::FromStr;

/// The workspace-wide default RNG seed for sampled campaigns.
pub const DEFAULT_SEED: u64 = 0xDA7E_2005;

/// Parsed command-line arguments (flag/value pairs and bare flags).
#[derive(Clone, Debug, Default)]
pub struct CliArgs {
    raw: Vec<String>,
}

impl CliArgs {
    /// Captures the process arguments (program name excluded).
    #[must_use]
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit vector (tests).
    #[must_use]
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// The value following `flag`, parsed; `None` when absent or
    /// unparseable.
    #[must_use]
    pub fn value<T: FromStr>(&self, flag: &str) -> Option<T> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|s| s.parse().ok())
    }

    /// The value following `flag`, or `default`.
    #[must_use]
    pub fn value_or<T: FromStr>(&self, flag: &str, default: T) -> T {
        self.value(flag).unwrap_or(default)
    }

    /// `true` if the bare flag is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// `--width N` (campaign operand width).
    #[must_use]
    pub fn width(&self, default: u32) -> u32 {
        self.value_or("--width", default)
    }

    /// `--samples N` (Monte-Carlo vectors per fault / per campaign).
    #[must_use]
    pub fn samples(&self, default: u64) -> u64 {
        self.value_or("--samples", default)
    }

    /// `--seed S` (defaults to [`DEFAULT_SEED`]).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.value_or("--seed", DEFAULT_SEED)
    }

    /// `--threads N` (defaults to all available cores).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.value_or("--threads", par::default_threads())
    }

    /// The standard input-space policy for `width`: exhaustive while
    /// small, `--samples`-sized seeded Monte-Carlo beyond (and always
    /// sampled under `--monte-carlo`).
    #[must_use]
    pub fn space(&self, width: u32, default_samples: u64) -> InputSpace {
        let per_fault = self.samples(default_samples);
        let seed = self.seed();
        if self.flag("--monte-carlo") {
            return InputSpace::Sampled { per_fault, seed };
        }
        InputSpace::auto(width, per_fault, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CliArgs {
        CliArgs::from_vec(list.iter().map(ToString::to_string).collect())
    }

    #[test]
    fn values_flags_and_defaults() {
        let a = args(&["--width", "8", "--fast", "--seed", "7"]);
        assert_eq!(a.width(4), 8);
        assert_eq!(a.samples(1 << 14), 1 << 14);
        assert_eq!(a.seed(), 7);
        assert!(a.flag("--fast"));
        assert!(!a.flag("--slow"));
        assert_eq!(a.value::<u32>("--missing"), None);
        assert_eq!(args(&[]).seed(), DEFAULT_SEED);
    }

    #[test]
    fn unparseable_values_fall_back() {
        let a = args(&["--width", "tall"]);
        assert_eq!(a.width(4), 4);
    }

    #[test]
    fn space_switches_on_width_and_flag() {
        let a = args(&["--samples", "64"]);
        assert_eq!(a.space(4, 128), InputSpace::Exhaustive);
        assert_eq!(
            a.space(16, 128),
            InputSpace::Sampled {
                per_fault: 64,
                seed: DEFAULT_SEED
            }
        );
        let mc = args(&["--monte-carlo"]);
        assert!(matches!(mc.space(2, 128), InputSpace::Sampled { .. }));
    }
}
