//! Walks the paper's **Figure 3** co-design flow end to end for the FIR
//! specification: self-checking specification → SCK expansion
//! ("OFFIS synthesizer") → hardware path (scheduling/binding/area — the
//! "Synopsys CoCentric" role) and software path (cost model — the "g++"
//! role) → partitioning → reliability validation (the §4 campaign, run
//! through the unified `scdp-campaign` API on both engines).
//!
//! Usage:
//!   fig3_flow [--width N] [--threads N]

use scdp_bench::CliArgs;
use scdp_campaign::{Backend, FaultModel, Scenario};
use scdp_codesign::{partition, CodesignFlow, Goal, Mapping, PartitionProblem, TaskEstimate};
use scdp_core::{Operator, Technique};
use scdp_fir::fir_body_dfg;
use scdp_hls::{expand_sck, SckStyle};

fn main() {
    let args = CliArgs::parse();
    let flow = CodesignFlow::default();
    let body = fir_body_dfg();
    println!(
        "[1] self-checking specification: {} ({} nodes)",
        body.name(),
        body.len()
    );

    let expanded = expand_sck(&body, Technique::Tech1, SckStyle::Full);
    println!(
        "[2] SCK expansion (OFFIS role): {} nodes (+{} hidden checker ops)",
        expanded.len(),
        expanded.len() - body.len()
    );
    for (name, count) in expanded.op_histogram() {
        println!("      {name:<8} x{count}");
    }

    let hw = flow.hardware(&body, SckStyle::Full, Goal::MinArea);
    println!(
        "[3] hardware path (CoCentric role): latency {}, fmax {:.2} MHz, {}",
        hw.latency_formula(),
        hw.fmax_mhz,
        hw.area
    );

    let sw = flow.software(&body, SckStyle::Full);
    println!(
        "[4] software path (g++ role): {} cycles/iteration, {} instructions, {} KB",
        sw.cycles_per_iteration,
        sw.instructions_per_iteration,
        sw.code_bytes / 1024
    );

    // Partition a small system: the FIR plus a control task.
    let n = 64.0; // taps
    let cpu_mhz = 50.0;
    let problem = PartitionProblem {
        tasks: vec![
            TaskEstimate {
                name: "fir".into(),
                hw_latency: (2.0 + f64::from(hw.cycles_per_iteration) * n) / hw.fmax_mhz,
                hw_area: hw.area_slices,
                sw_latency: (sw.cycles_per_iteration as f64 * n) / cpu_mhz,
            },
            TaskEstimate {
                name: "control".into(),
                hw_latency: 5.0,
                hw_area: 900.0,
                sw_latency: 8.0,
            },
        ],
        area_budget: 1000.0,
    };
    let (mapping, latency, area) = partition(&problem);
    println!("[5] partitioning under a 1000-slice budget:");
    for (task, m) in problem.tasks.iter().zip(&mapping) {
        println!(
            "      {:<8} -> {}",
            task.name,
            match m {
                Mapping::Hardware => "hardware",
                Mapping::Software => "software",
            }
        );
    }
    println!("      total latency {latency:.1} us, area used {area:.0} slices");

    // The flow's last box: validate the reliability the specification
    // promises. One scenario, both engines, bit-identical tallies.
    // Exhaustive inputs are what make the cross-backend equality exact,
    // so the validation width is clamped to keep the 2^(2w) pair space
    // bounded (use gate_xval for wide sampled campaigns).
    let width = args.width(4).clamp(1, 8);
    let scenario = Scenario::new(Operator::Add, width).technique(Technique::Tech1);
    let spec = scenario
        .campaign()
        .fault_model(FaultModel::FaGate)
        .threads(args.threads());
    let functional = spec.clone().run().expect("functional campaign");
    let gate = spec
        .backend(Backend::GateLevel)
        .run()
        .expect("gate-level campaign");
    println!(
        "[6] reliability validation (+, {width}-bit, Tech1): functional {:.2}% vs \
         gate-level {:.2}% — {}",
        functional.coverage() * 100.0,
        gate.coverage() * 100.0,
        if functional.same_results(&gate) {
            "bit-identical four-way tallies"
        } else {
            "MISMATCH"
        }
    );
}
