//! Cross-crate integration tests: the specification-level type, the
//! functional fault model, the coverage engine and the gate-level
//! substrate must tell one consistent story.

use scdp::arith::{ArrayMultiplier, FaultableUnit, RippleCarryAdder, Word};
use scdp::campaign::Scenario;
use scdp::core::{
    checked_add, context, Allocation, DataPath, FaultSite, FaultyDataPath, Operator, Slot,
};
use scdp::coverage::{classify_add, TechIndex};
use scdp::netlist::gen::{self_checking, SelfCheckingSpec};
use scdp::{sck, Technique};
use std::cell::RefCell;
use std::rc::Rc;

/// The three evaluation layers agree on a concrete masking scenario:
/// pick an undetected (fault, input) situation from the campaign engine
/// and confirm both the `Sck` type and the gate-level netlist also miss
/// it — and that the dedicated allocation catches it everywhere.
#[test]
fn masking_scenario_consistent_across_layers() {
    let width = 4u32;
    let adder = RippleCarryAdder::new(width);
    // Find one undetected Tech1 situation with the functional model.
    let mut witness = None;
    'search: for fault in adder.gate_faults() {
        for a in Word::all(width) {
            for b in Word::all(width) {
                let v = classify_add(&adder, fault, Allocation::SingleUnit, a, b);
                if v.observable && !v.det1 {
                    witness = Some((fault, a, b));
                    break 'search;
                }
            }
        }
    }
    let (fault, a, b) = witness.expect("Table 2 guarantees masking exists");

    // Layer 1: the checked-operator library.
    let mut dp = FaultyDataPath::new(width, FaultSite::Adder(fault), Allocation::SingleUnit);
    let c = checked_add(&mut dp, Technique::Tech1, a, b);
    assert_ne!(c.value, a.wrapping_add(b), "observable");
    assert!(!c.error, "masked at the checked-operator level too");

    // Layer 2: dedicated allocation detects it.
    let mut dp = FaultyDataPath::new(width, FaultSite::Adder(fault), Allocation::Dedicated);
    let c = checked_add(&mut dp, Technique::Tech1, a, b);
    assert!(c.error, "dedicated checker must catch it (§2.1)");

    // Layer 3: the gate-level datapath agrees (correlated = shared).
    let gate = self_checking(SelfCheckingSpec {
        op: Operator::Add,
        technique: Technique::Tech1,
        width,
    });
    if let scdp::arith::RcaFault::Gate {
        position,
        fault: gf,
    } = fault
    {
        let cells = local_fa(position);
        let mut faults = Vec::new();
        for local in cells.sites(gf.site()) {
            faults.push(scdp::netlist::StuckAtLine::new(
                gate.nominal.globalize(local),
                gf.stuck(),
            ));
            for chk in &gate.checkers {
                faults.push(scdp::netlist::StuckAtLine::new(
                    chk.globalize(local),
                    gf.stuck(),
                ));
            }
        }
        let out = gate.netlist.eval_words(&[a, b], &faults);
        assert_ne!(out[0], a.wrapping_add(b), "gate level: observable");
        assert_eq!(out[1].bits(), 0, "gate level: masked");
    } else {
        panic!("expected a gate fault");
    }
}

fn local_fa(i: usize) -> scdp::netlist::gen::FaCells {
    scdp::netlist::gen::FaCells {
        x1: 5 * i,
        x2: 5 * i + 1,
        a1: 5 * i + 2,
        a2: 5 * i + 3,
        o1: 5 * i + 4,
    }
}

/// The Sck type on a faulty context reports exactly what the campaign
/// engine predicts for the same fault, over the full 3-bit input space.
#[test]
fn sck_type_matches_campaign_classification() {
    let width = 8u32;
    let adder = RippleCarryAdder::new(width);
    for fault in adder.gate_faults().step_by(17) {
        for (a, b) in [(1i8, 2), (-128, 127), (85, -86), (0, 0), (-1, -1)] {
            let aw = Word::from_i64(width, i64::from(a));
            let bw = Word::from_i64(width, i64::from(b));
            let v = classify_add(&adder, fault, Allocation::SingleUnit, aw, bw);
            let dp = Rc::new(RefCell::new(FaultyDataPath::new(
                width,
                FaultSite::Adder(fault),
                Allocation::SingleUnit,
            )));
            let _g = context::install(dp);
            let z = sck(a) + sck(b);
            assert_eq!(z.error(), v.det1, "{fault:?} {a}+{b}");
            assert_eq!(
                Word::from_i64(width, i64::from(z.value())) != aw.wrapping_add(bw),
                v.observable
            );
        }
    }
}

/// Campaign coverage is monotone: Both >= max(Tech1, Tech2), and the
/// dedicated allocation dominates the shared one, for every operator.
#[test]
fn coverage_orderings_hold_for_all_operators() {
    for op in Operator::ALL {
        let shared = Scenario::new(op, 3).campaign().run().expect("valid");
        let dedicated = Scenario::new(op, 3)
            .allocation(Allocation::Dedicated)
            .campaign()
            .run()
            .expect("valid");
        let cov = |r: &scdp::campaign::CampaignReport, t| {
            r.coverage_of(t).expect("functional fills all columns")
        };
        let c1 = cov(&shared, TechIndex::Tech1);
        let c2 = cov(&shared, TechIndex::Tech2);
        let cb = cov(&shared, TechIndex::Both);
        assert!(cb >= c1.max(c2) - 1e-12, "{op:?}");
        for t in TechIndex::ALL {
            assert!(cov(&dedicated, t) >= cov(&shared, t) - 1e-12, "{op:?} {t}");
        }
        // Dedicated checking of add/sub/mul is exhaustive (100%).
        if !matches!(op, Operator::Div) {
            assert!(
                (cov(&dedicated, TechIndex::Both) - 1.0).abs() < 1e-12,
                "{op:?}"
            );
        }
    }
}

/// A multiplier fault never perturbs adder traffic: the single
/// functional-unit failure model isolates unit classes.
#[test]
fn single_unit_failure_isolation() {
    let mult = ArrayMultiplier::new(8);
    let uf = mult
        .universe()
        .iter()
        .find(|f| !f.fault().is_latent())
        .unwrap();
    let mut dp = FaultyDataPath::new(8, FaultSite::Multiplier(uf), Allocation::SingleUnit);
    for (a, b) in [(1i64, 2), (100, -27), (-128, 127)] {
        let aw = Word::from_i64(8, a);
        let bw = Word::from_i64(8, b);
        assert_eq!(dp.add(Slot::Nominal, aw, bw), aw.wrapping_add(bw));
        assert_eq!(dp.sub(Slot::Checker, aw, bw), aw.wrapping_sub(bw));
    }
}

/// End-to-end Figure 3: specification -> expansion -> hardware and
/// software estimates, with the paper's qualitative outcomes.
#[test]
fn codesign_flow_end_to_end() {
    use scdp::codesign::{CodesignFlow, Goal};
    use scdp::hls::SckStyle;
    let flow = CodesignFlow::default();
    let body = scdp::fir::fir_body_dfg();
    let plain = flow.hardware(&body, SckStyle::Plain, Goal::MinArea);
    let full = flow.hardware(&body, SckStyle::Full, Goal::MinArea);
    assert!(full.area_slices > 1.5 * plain.area_slices);
    assert!(full.fmax_mhz < plain.fmax_mhz);
    let sw_plain = flow.software(&body, SckStyle::Plain);
    let sw_full = flow.software(&body, SckStyle::Full);
    let slowdown = sw_full.cycles_per_iteration as f64 / sw_plain.cycles_per_iteration as f64;
    assert!(slowdown > 1.2 && slowdown < 4.0, "slowdown {slowdown}");
}
