//! Loop-body DFGs for the companion circuits ("other circuits are now
//! taken into consideration", §5).

use scdp_hls::{Dfg, OpKind};

/// Direct-form-I biquad IIR section, one sample per iteration:
///
/// ```text
/// y = b0·x + b1·x1 + b2·x2 − a1·y1 − a2·y2
/// ```
///
/// Five multiplies and four adds/subs per sample with loop-carried state
/// — a much denser multiplier workload than the FIR tap, so the checked
/// variants stress multiplier sharing harder.
#[must_use]
pub fn iir_biquad_dfg() -> Dfg {
    let mut d = Dfg::new("iir_biquad");
    let x = d.input("x");
    let x1 = d.input("x1");
    let x2 = d.input("x2");
    let y1 = d.input("y1");
    let y2 = d.input("y2");
    let b0 = d.input("b0");
    let b1 = d.input("b1");
    let b2 = d.input("b2");
    let a1 = d.input("a1");
    let a2 = d.input("a2");

    let t0 = d.op(OpKind::Mul, &[b0, x]);
    let t1 = d.op(OpKind::Mul, &[b1, x1]);
    let t2 = d.op(OpKind::Mul, &[b2, x2]);
    let t3 = d.op(OpKind::Mul, &[a1, y1]);
    let t4 = d.op(OpKind::Mul, &[a2, y2]);
    let s1 = d.op(OpKind::Add, &[t0, t1]);
    let s2 = d.op(OpKind::Add, &[s1, t2]);
    let s3 = d.op(OpKind::Sub, &[s2, t3]);
    let y = d.op(OpKind::Sub, &[s3, t4]);

    d.output("y", y);
    // State shift (loop-carried).
    d.output("x1", x);
    d.output("x2", x1);
    d.output("y1", y);
    d.output("y2", y1);
    d
}

/// Dot-product accumulation step: `acc' = acc + a[i]·b[i]` with two
/// streamed memory reads and index bookkeeping.
#[must_use]
pub fn dot_body_dfg() -> Dfg {
    let mut d = Dfg::new("dot_step");
    let i = d.input("i");
    let acc = d.input("acc");
    let one = d.constant(1);
    let i_next = d.op(OpKind::Add, &[i, one]);
    d.output("_i", i_next);
    let a = d.op(OpKind::Load { bank: 0 }, &[i]);
    let b = d.op(OpKind::Load { bank: 1 }, &[i]);
    let t = d.op(OpKind::Mul, &[a, b]);
    let acc_next = d.op(OpKind::Add, &[acc, t]);
    d.output("acc", acc_next);
    d
}

/// One row of a matrix–vector product with a running average —
/// exercises the divider (`avg = acc / count`), the operator whose
/// checking recipe is the most expensive in Table 1.
#[must_use]
pub fn matvec_row_dfg() -> Dfg {
    let mut d = Dfg::new("matvec_row");
    let j = d.input("j");
    let acc = d.input("acc");
    let count = d.input("count");
    let one = d.constant(1);
    let j_next = d.op(OpKind::Add, &[j, one]);
    d.output("_j", j_next);
    let m = d.op(OpKind::Load { bank: 0 }, &[j]);
    let x = d.op(OpKind::Load { bank: 1 }, &[j]);
    let t = d.op(OpKind::Mul, &[m, x]);
    let acc_next = d.op(OpKind::Add, &[acc, t]);
    d.output("acc", acc_next);
    let avg = d.op(OpKind::Div, &[acc_next, count]);
    d.output("avg", avg);
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use scdp_core::Technique;
    use scdp_hls::{expand_sck, sched, ComponentLibrary, ResourceSet, SckStyle};

    #[test]
    fn biquad_shape() {
        let d = iir_biquad_dfg();
        let hist = d.op_histogram();
        let count = |k: &str| hist.iter().find(|(n, _)| n == k).map_or(0, |(_, c)| *c);
        assert_eq!(count("mul"), 5);
        assert_eq!(count("add"), 2);
        assert_eq!(count("sub"), 2);
    }

    #[test]
    fn all_bodies_schedule_plain_and_expanded() {
        let lib = ComponentLibrary::virtex16();
        for body in [iir_biquad_dfg(), dot_body_dfg(), matvec_row_dfg()] {
            for style in [SckStyle::Plain, SckStyle::Full, SckStyle::Embedded] {
                let g = expand_sck(&body, Technique::Tech1, style);
                let s = sched::list_schedule(&g, &lib, &ResourceSet::min_area());
                assert!(s.length() > 0, "{} {:?}", body.name(), style);
            }
        }
    }

    #[test]
    fn expansion_grows_with_density() {
        // The multiplier-dense biquad gains more checker nodes than the
        // single-MAC dot product.
        let b = expand_sck(&iir_biquad_dfg(), Technique::Tech1, SckStyle::Full);
        let p = expand_sck(&dot_body_dfg(), Technique::Tech1, SckStyle::Full);
        let checkers = |g: &scdp_hls::Dfg| {
            g.iter()
                .filter(|(_, n)| n.role == scdp_hls::Role::Checker)
                .count()
        };
        assert!(checkers(&b) > 2 * checkers(&p));
    }

    #[test]
    fn matvec_div_is_checked_in_embedded_style() {
        // avg feeds a data output, so the embedded style must check the
        // division too.
        let g = expand_sck(&matvec_row_dfg(), Technique::Tech1, SckStyle::Embedded);
        assert!(g
            .iter()
            .any(|(_, n)| matches!(n.kind, scdp_hls::OpKind::Rem)
                && n.role == scdp_hls::Role::Checker));
    }
}
