//! The specification-level description of one reliability analysis.

use scdp_core::{Allocation, Operator, Technique};
use scdp_coverage::TechIndex;
use scdp_netlist::gen::AdderRealisation;
use std::fmt;

/// Which engine executes a campaign.
///
/// Both backends analyse the *same* [`Scenario`]; the paper's §4 flow
/// runs the functional campaign first (Table 2) and validates it at gate
/// level, which is exactly [`Backend::Functional`] followed by
/// [`Backend::GateLevel`] on an unchanged scenario.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Functional cell-level classification (`scdp-coverage`).
    Functional,
    /// Bit-parallel structural stuck-at simulation (`scdp-sim`).
    GateLevel,
}

impl Backend {
    /// Stable serialisation label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Functional => "functional",
            Backend::GateLevel => "gate-level",
        }
    }

    /// Parses a serialisation label.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Backend> {
        match s {
            "functional" => Some(Backend::Functional),
            "gate-level" => Some(Backend::GateLevel),
            _ => None,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which fault universe a campaign injects.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// The backend's canonical model: [`FaultModel::FaGate`] on the
    /// functional backend, [`FaultModel::Structural`] at gate level.
    Auto,
    /// The paper's `32·n` universe: 16 stuck-at sites × 2 polarities per
    /// five-gate full adder. Native to the functional backend; at gate
    /// level it is replayed as equivalent multiple-stuck-at groups on
    /// the generated ripple-carry netlist, making the two backends
    /// *bit-comparable* (only `+`/`−` on the RCA realisation).
    FaGate,
    /// Truth-table cell faults (functional backend only).
    Cell,
    /// Every instance-local gate stem and input pin of the generated
    /// netlist, both polarities (gate-level backend only).
    Structural,
}

impl FaultModel {
    /// Stable serialisation label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultModel::Auto => "auto",
            FaultModel::FaGate => "fa-gate",
            FaultModel::Cell => "cell",
            FaultModel::Structural => "structural",
        }
    }

    /// Parses a serialisation label.
    #[must_use]
    pub fn from_label(s: &str) -> Option<FaultModel> {
        match s {
            "auto" => Some(FaultModel::Auto),
            "fa-gate" => Some(FaultModel::FaGate),
            "cell" => Some(FaultModel::Cell),
            "structural" => Some(FaultModel::Structural),
            _ => None,
        }
    }

    /// Resolves [`FaultModel::Auto`] to the backend's canonical model.
    #[must_use]
    pub fn resolve(self, backend: Backend) -> FaultModel {
        match (self, backend) {
            (FaultModel::Auto, Backend::Functional) => FaultModel::FaGate,
            (FaultModel::Auto, Backend::GateLevel) => FaultModel::Structural,
            (m, _) => m,
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One self-checking data-path analysis scenario: *what* is analysed,
/// independent of *how* (engine, fault model, input space — those live
/// in [`CampaignSpec`](crate::CampaignSpec)).
///
/// # Example
///
/// ```
/// use scdp_campaign::Scenario;
/// use scdp_core::{Allocation, Operator, Technique};
///
/// let s = Scenario::new(Operator::Add, 4)
///     .technique(Technique::Tech1)
///     .allocation(Allocation::SingleUnit);
/// assert_eq!(s.width, 4);
/// let report = s.campaign().run().expect("valid scenario");
/// assert_eq!(report.total_situations(), 128 * 256);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The checked operator.
    pub op: Operator,
    /// Operand width in bits.
    pub width: u32,
    /// The check policy (Table 1 column).
    pub technique: Technique,
    /// Checker allocation: shared worst case or dedicated units.
    pub allocation: Allocation,
    /// Structural adder realisation (gate-level `+` datapaths; the
    /// functional backend and other operators always use ripple-carry).
    pub realisation: AdderRealisation,
}

impl Scenario {
    /// A scenario with the paper's defaults: combined techniques, shared
    /// (worst-case) allocation, ripple-carry realisation.
    #[must_use]
    pub fn new(op: Operator, width: u32) -> Self {
        Self {
            op,
            width,
            technique: Technique::Both,
            allocation: Allocation::SingleUnit,
            realisation: AdderRealisation::RippleCarry,
        }
    }

    /// Selects the check policy.
    #[must_use]
    pub fn technique(mut self, technique: Technique) -> Self {
        self.technique = technique;
        self
    }

    /// Selects the checker allocation.
    #[must_use]
    pub fn allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Selects the structural adder realisation.
    #[must_use]
    pub fn realisation(mut self, realisation: AdderRealisation) -> Self {
        self.realisation = realisation;
        self
    }

    /// Starts a [`CampaignSpec`](crate::CampaignSpec) for this scenario.
    #[must_use]
    pub fn campaign(self) -> crate::CampaignSpec {
        crate::CampaignSpec::new(self)
    }

    /// The technique column this scenario's report is canonical for.
    #[must_use]
    pub fn tech_index(&self) -> TechIndex {
        match self.technique {
            Technique::Tech1 => TechIndex::Tech1,
            Technique::Tech2 => TechIndex::Tech2,
            Technique::Both => TechIndex::Both,
        }
    }

    /// Stable serialisation label of the operator.
    #[must_use]
    pub fn op_label(&self) -> &'static str {
        match self.op {
            Operator::Add => "add",
            Operator::Sub => "sub",
            Operator::Mul => "mul",
            Operator::Div => "div",
        }
    }
}

/// Parses an operator serialisation label.
#[must_use]
pub fn op_from_label(s: &str) -> Option<Operator> {
    match s {
        "add" => Some(Operator::Add),
        "sub" => Some(Operator::Sub),
        "mul" => Some(Operator::Mul),
        "div" => Some(Operator::Div),
        _ => None,
    }
}

/// Stable serialisation label of a technique.
#[must_use]
pub fn technique_label(t: Technique) -> &'static str {
    match t {
        Technique::Tech1 => "tech1",
        Technique::Tech2 => "tech2",
        Technique::Both => "both",
    }
}

/// Parses a technique serialisation label.
#[must_use]
pub fn technique_from_label(s: &str) -> Option<Technique> {
    match s {
        "tech1" => Some(Technique::Tech1),
        "tech2" => Some(Technique::Tech2),
        "both" => Some(Technique::Both),
        _ => None,
    }
}

/// Stable serialisation label of an allocation.
#[must_use]
pub fn allocation_label(a: Allocation) -> &'static str {
    match a {
        Allocation::SingleUnit => "single-unit",
        Allocation::Dedicated => "dedicated",
    }
}

/// Parses an allocation serialisation label.
#[must_use]
pub fn allocation_from_label(s: &str) -> Option<Allocation> {
    match s {
        "single-unit" => Some(Allocation::SingleUnit),
        "dedicated" => Some(Allocation::Dedicated),
        _ => None,
    }
}

/// Stable serialisation label of an adder realisation.
#[must_use]
pub fn realisation_label(r: AdderRealisation) -> &'static str {
    match r {
        AdderRealisation::RippleCarry => "rca",
        AdderRealisation::CarryLookahead => "cla",
        AdderRealisation::CarrySave => "csa",
    }
}

/// Parses an adder-realisation serialisation label.
#[must_use]
pub fn realisation_from_label(s: &str) -> Option<AdderRealisation> {
    match s {
        "rca" => Some(AdderRealisation::RippleCarry),
        "cla" => Some(AdderRealisation::CarryLookahead),
        "csa" => Some(AdderRealisation::CarrySave),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let s = Scenario::new(Operator::Add, 8);
        assert_eq!(s.technique, Technique::Both);
        assert_eq!(s.allocation, Allocation::SingleUnit);
        assert_eq!(s.realisation, AdderRealisation::RippleCarry);
        assert_eq!(s.tech_index(), TechIndex::Both);
    }

    #[test]
    fn labels_round_trip() {
        for op in Operator::ALL {
            let s = Scenario::new(op, 4);
            assert_eq!(op_from_label(s.op_label()), Some(op));
        }
        for t in Technique::ALL {
            assert_eq!(technique_from_label(technique_label(t)), Some(t));
        }
        for a in [Allocation::SingleUnit, Allocation::Dedicated] {
            assert_eq!(allocation_from_label(allocation_label(a)), Some(a));
        }
        for r in AdderRealisation::ALL {
            assert_eq!(realisation_from_label(realisation_label(r)), Some(r));
        }
        for b in [Backend::Functional, Backend::GateLevel] {
            assert_eq!(Backend::from_label(b.label()), Some(b));
        }
        for m in [
            FaultModel::Auto,
            FaultModel::FaGate,
            FaultModel::Cell,
            FaultModel::Structural,
        ] {
            assert_eq!(FaultModel::from_label(m.label()), Some(m));
        }
        assert_eq!(Backend::from_label("nope"), None);
        assert_eq!(FaultModel::from_label("nope"), None);
    }

    #[test]
    fn auto_resolves_per_backend() {
        assert_eq!(
            FaultModel::Auto.resolve(Backend::Functional),
            FaultModel::FaGate
        );
        assert_eq!(
            FaultModel::Auto.resolve(Backend::GateLevel),
            FaultModel::Structural
        );
        assert_eq!(
            FaultModel::Cell.resolve(Backend::GateLevel),
            FaultModel::Cell
        );
    }
}
