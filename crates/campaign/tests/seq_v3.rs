//! Sequential-campaign regression pins, `scdp.campaign.report/v3`
//! schema compatibility and the cross-elaboration equivalence of the
//! permanent-fault universe.
//!
//! * The width-4 FIR/Tech1 sequential tally, detection-latency
//!   histogram and per-FU shape are golden-pinned (same seeded input
//!   space as the unrolled pin in `datapath_v2.rs`).
//! * **Cross-elaboration equivalence**: the sequential engine's
//!   permanent-fault per-fault tallies must match the unrolled
//!   correlated-injection tallies *exactly* for every fault site in a
//!   functional-unit **core**. The only divergences allowed are sites
//!   in the operand **mux-chain region** (`SeqFuSpan::mux_gates`),
//!   where the two machines legitimately differ: the unrolled model
//!   steers each instance with per-instance constant selects and
//!   zero-tied dead legs, while the sequential machine drives one
//!   physical chain with dynamic state-decoded selects and live
//!   operand data on every leg. That region is an explicit allowlist,
//!   not a tolerance — a single core-site mismatch fails the suite.
//! * v1/v2/v3 documents all parse; v3 round-trips byte for byte; a
//!   malformed latency histogram is a typed [`CampaignError`], never a
//!   panic.

use scdp_campaign::{
    CampaignError, CampaignReport, DatapathScenario, DfgSource, FaultDuration, InputSpace,
    REPORT_SCHEMA, REPORT_SCHEMA_V2, REPORT_SCHEMA_V3,
};
use scdp_core::Technique;

/// The pinned scenario: width-4 FIR, Tech1, full SCK expansion, shared
/// (worst-case) allocation, 2048 seeded Monte-Carlo vectors — the
/// sequential twin of `datapath_v2.rs`'s pin.
fn pinned_scenario() -> DatapathScenario {
    DatapathScenario::new(DfgSource::Fir, 4).technique(Technique::Tech1)
}

fn pinned_space() -> InputSpace {
    InputSpace::Sampled {
        per_fault: 2048,
        seed: 0xDA7E_2005,
    }
}

fn pinned_seq_report() -> CampaignReport {
    pinned_scenario()
        .seq_campaign()
        .duration(FaultDuration::Permanent)
        .input_space(pinned_space())
        .threads(2)
        .run()
        .expect("sequential campaign runs")
}

#[test]
fn width4_fir_tech1_sequential_tally_is_pinned() {
    let r = pinned_seq_report();
    let t = r.four_way();
    assert_eq!(
        (
            t.correct_silent,
            t.correct_detected,
            t.error_detected,
            t.error_undetected,
        ),
        (1_300_966, 529_858, 986_969, 94_463),
        "the width-4 FIR/Tech1 sequential tally drifted — elaboration, \
         scheduling, binding or the sequential engine changed behaviour"
    );
    assert_eq!(r.fault_count(), 1422);
    assert_eq!(r.simulated, 2_912_256);
    let seq = r.sequential.as_ref().expect("sequential section");
    assert_eq!(seq.duration, FaultDuration::Permanent);
    assert_eq!(seq.total_cycles, 8, "7 schedule cycles + 1 drain state");
    assert_eq!(
        seq.first_detect_hist,
        vec![0, 0, 0, 864_314, 0, 0, 230_731, 421_782],
        "the detection-latency histogram drifted"
    );
    let dp = r.datapath.as_ref().expect("datapath section");
    // One physical ALU (6 ops), one physical multiplier (2 ops), one
    // memory port (no gates) — a single instance each.
    let alu = dp.per_fu.iter().find(|f| f.name == "alu0").expect("alu0");
    assert_eq!(
        (alu.ops, alu.instances, alu.instance_gates, alu.faults),
        (6, 1, 180, 1000)
    );
    let mult = dp.per_fu.iter().find(|f| f.name == "mult0").expect("mult0");
    assert_eq!(
        (mult.ops, mult.instances, mult.instance_gates, mult.faults),
        (2, 1, 75, 422)
    );
    let mem = dp.per_fu.iter().find(|f| f.class == "mem").expect("mem0");
    assert_eq!((mem.instances, mem.faults), (0, 0));
}

#[test]
fn permanent_tallies_match_unrolled_outside_the_mux_allowlist() {
    let scenario = pinned_scenario();
    let unrolled = scenario
        .clone()
        .campaign()
        .input_space(pinned_space())
        .threads(2)
        .run()
        .expect("unrolled campaign runs");
    let seq = pinned_seq_report();
    assert_eq!(
        unrolled.fault_count(),
        seq.fault_count(),
        "the two elaborations enumerate the same universe"
    );
    // Map universe indices to FU-local sites via the sequential
    // elaboration (site order is index-compatible by construction).
    let dp = scenario.elaborate_seq();
    let (_, ranges) = dp.fault_universe();
    let mut core_faults = 0usize;
    let mut mux_divergences = 0usize;
    for r in &ranges {
        let span = &dp.fus[r.fu];
        let sites = dp.fu_local_sites(r.fu);
        for i in r.start..r.end {
            let site = sites[(i - r.start) / 2];
            let u = &unrolled.per_fault[i];
            let s = &seq.per_fault[i];
            if site.gate < span.mux_gates {
                // Steering logic: divergence allowed (dynamic selects
                // and live dead-legs vs constants and zeros), verdict
                // classes still meaningful on both sides.
                mux_divergences += usize::from(u.tally != s.tally);
            } else {
                core_faults += 1;
                assert_eq!(
                    u.tally, s.tally,
                    "core fault {i} ({} local gate {} pin {:?}): sequential and \
                     unrolled four-way tallies must be identical",
                    span.name, site.gate, site.pin
                );
                assert_eq!((u.detected, u.escaped), (s.detected, s.escaped));
            }
        }
    }
    assert_eq!(
        core_faults + mux_site_faults(&dp),
        unrolled.fault_count() as usize,
        "every fault is classified as core or mux region"
    );
    assert!(core_faults > 300, "the core region must be substantial");
    // The allowlist is real but small; if it collapses to zero the two
    // elaborations converged and the allowlist should be removed.
    assert!(
        mux_divergences > 0,
        "mux-region divergence vanished — tighten this test to full equality"
    );
}

/// Counts the universe's fault groups whose site lies in a mux-chain
/// region.
fn mux_site_faults(dp: &scdp_netlist::gen::SeqDatapath) -> usize {
    let (_, ranges) = dp.fault_universe();
    let mut n = 0usize;
    for r in &ranges {
        let span = &dp.fus[r.fu];
        let sites = dp.fu_local_sites(r.fu);
        for i in r.start..r.end {
            n += usize::from(sites[(i - r.start) / 2].gate < span.mux_gates);
        }
    }
    n
}

#[test]
fn v3_report_round_trips_byte_for_byte() {
    let mut r = DatapathScenario::new(DfgSource::Dot, 2)
        .technique(Technique::Tech1)
        .seq_campaign()
        .duration(FaultDuration::Transient { cycle: 2 })
        .input_space(InputSpace::Sampled {
            per_fault: 128,
            seed: 9,
        })
        .threads(2)
        .run()
        .expect("campaign runs");
    r.elapsed_ms = 0;
    let json = r.to_json();
    assert!(json.contains(REPORT_SCHEMA_V3), "v3 schema tag missing");
    assert!(
        json.contains("\"sequential\""),
        "sequential section missing"
    );
    assert!(json.contains("\"kind\": \"transient\", \"cycle\": 2"));
    let parsed = CampaignReport::from_json(&json).expect("v3 parses");
    assert!(parsed.same_results(&r));
    assert_eq!(parsed.sequential, r.sequential);
    assert_eq!(parsed.to_json(), json, "serialisation is a fixpoint");
}

#[test]
fn v1_and_v2_documents_still_parse() {
    let v1 = scdp_campaign::Scenario::new(scdp_core::Operator::Add, 2)
        .campaign()
        .run()
        .expect("operator campaign");
    let json = v1.to_json();
    assert!(json.contains(REPORT_SCHEMA));
    let parsed = CampaignReport::from_json(&json).expect("v1 parses");
    assert!(parsed.sequential.is_none());

    let v2 = DatapathScenario::new(DfgSource::Dot, 2)
        .technique(Technique::Tech1)
        .campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 3,
        })
        .run()
        .expect("datapath campaign");
    let json = v2.to_json();
    assert!(json.contains(REPORT_SCHEMA_V2));
    assert!(!json.contains("\"sequential\""));
    let parsed = CampaignReport::from_json(&json).expect("v2 parses");
    assert!(parsed.datapath.is_some());
    assert!(parsed.sequential.is_none());
}

#[test]
fn schema_and_sequential_section_must_agree() {
    let mut r = pinned_scenario()
        .seq_campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 5,
        })
        .run()
        .expect("campaign runs");
    r.elapsed_ms = 0;
    let v3 = r.to_json();
    // v2-labelled document with a sequential section: typed error.
    let bad = v3.replace(REPORT_SCHEMA_V3, REPORT_SCHEMA_V2);
    assert!(matches!(
        CampaignReport::from_json(&bad),
        Err(CampaignError::Schema {
            field: "sequential",
            ..
        })
    ));
    // v3-labelled document without the section: typed error.
    let stripped = {
        let start = v3.find("  \"sequential\":").expect("section present");
        let end = v3[start..].find("]},\n").expect("section end") + start + 4;
        format!("{}{}", &v3[..start], &v3[end..])
    };
    assert!(matches!(
        CampaignReport::from_json(&stripped),
        Err(CampaignError::Schema {
            field: "sequential",
            ..
        })
    ));
}

#[test]
fn malformed_latency_histograms_are_typed_errors() {
    let mut r = DatapathScenario::new(DfgSource::Dot, 2)
        .technique(Technique::Tech1)
        .seq_campaign()
        .input_space(InputSpace::Sampled {
            per_fault: 64,
            seed: 5,
        })
        .threads(1)
        .run()
        .expect("campaign runs");
    r.elapsed_ms = 0;
    let good = r.to_json();
    let hist_start = good.find("\"first_detect_hist\": [").expect("hist");
    let hist_end = good[hist_start..].find(']').unwrap() + hist_start + 1;
    let hist = &good[hist_start..hist_end];
    for (bad_hist, why) in [
        ("\"first_detect_hist\": 7".to_string(), "not an array"),
        (
            "\"first_detect_hist\": [true]".to_string(),
            "cell not a count",
        ),
        (
            hist.replacen('[', "[999, ", 1),
            "length disagrees with total_cycles",
        ),
    ] {
        let bad = good.replacen(hist, &bad_hist, 1);
        assert_ne!(bad, good, "{why}: replacement did not apply");
        match CampaignReport::from_json(&bad) {
            Err(CampaignError::Schema { field, .. }) => {
                assert_eq!(field, "sequential.first_detect_hist", "{why}");
            }
            other => panic!("{why}: expected typed schema error, got {other:?}"),
        }
    }
    // Malformed duration object.
    let bad = good.replacen("\"kind\": \"permanent\"", "\"kind\": \"forever\"", 1);
    assert!(matches!(
        CampaignReport::from_json(&bad),
        Err(CampaignError::Schema {
            field: "sequential.duration",
            ..
        })
    ));
}

#[test]
fn negative_paths_have_stable_display_messages() {
    // `Display` text is part of the CLI surface; pin it.
    let err = pinned_scenario()
        .seq_campaign()
        .duration(FaultDuration::Transient { cycle: 99 })
        .input_space(InputSpace::Sampled {
            per_fault: 16,
            seed: 1,
        })
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        CampaignError::TransientCycleOutOfRange {
            cycle: 99,
            total_cycles: 8
        }
    ));
    assert_eq!(
        err.to_string(),
        "transient fault cycle 99 out of range: the sequential datapath runs 8 cycles (0..8)"
    );

    let err = DatapathScenario::new(DfgSource::Iir, 8)
        .seq_campaign()
        .run()
        .unwrap_err();
    let CampaignError::ExhaustiveDatapathTooLarge { input_bits } = err.clone() else {
        panic!("expected ExhaustiveDatapathTooLarge, got {err:?}");
    };
    assert_eq!(
        err.to_string(),
        format!(
            "exhaustive enumeration over {input_bits} datapath input bits is \
             intractable; use a sampled input space"
        )
    );

    let err = CampaignError::Schema {
        field: "sequential.first_detect_hist",
        message: "missing or not an array".into(),
    };
    assert_eq!(
        err.to_string(),
        "report JSON schema error at `sequential.first_detect_hist`: \
         missing or not an array"
    );
}
